package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a test counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only rise
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
	fg := r.FloatGauge("rate", "slots per second")
	fg.Set(123.5)
	if got := fg.Value(); got != 123.5 {
		t.Fatalf("FloatGauge Value() = %v, want 123.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Buckets are (≤1, ≤2, ≤4, +Inf): 0.5 and 1 land in the first,
	// 1.5 and 2 in the second, 3 in the third, 100 overflows.
	want := []uint64{2, 2, 1, 1}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("Counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-108) > 1e-9 {
		t.Fatalf("Sum = %v, want 108", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 10 observations in bucket (0,1], 10 in (1,2]: the median sits on
	// the first bucket's upper edge, p75 halfway through the second.
	hs := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []uint64{10, 10, 0, 0},
		Count:  20,
	}
	cases := []struct{ q, want float64 }{
		{0.5, 1.0},
		{0.75, 1.5},
		{0.25, 0.5},
		{1.0, 2.0},
	}
	for _, c := range cases {
		if got := hs.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Overflow ranks clamp to the last finite bound.
	over := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{1, 0, 3}, Count: 4}
	if got := over.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to 2", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", nil)
	h.Observe(0.3)
	s := r.Snapshot().Histograms["lat"]
	if !reflect.DeepEqual(s.Bounds, DefBuckets) {
		t.Fatalf("Bounds = %v, want DefBuckets", s.Bounds)
	}
}

func TestCounterVecHandles(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("skips_total", "skips by reason", "reason")
	a := v.With("no-sats")
	b := v.With("no-sats")
	if a != b {
		t.Fatal("With should return the same handle for the same value")
	}
	a.Add(3)
	v.With("gso").Inc()
	vals := v.Values()
	if vals["no-sats"] != 3 || vals["gso"] != 1 {
		t.Fatalf("Values() = %v", vals)
	}
	s := r.Snapshot()
	if got := s.Counter(`skips_total{reason="no-sats"}`); got != 3 {
		t.Fatalf("snapshot labeled counter = %d, want 3", got)
	}
}

func TestGaugeVecHandles(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("coord_shard_queue_depth", "records queued per shard", "shard")
	a := v.With("0")
	b := v.With("0")
	if a != b {
		t.Fatal("With should return the same handle for the same value")
	}
	a.Set(7)
	v.With("1").Add(2)
	v.With("1").Add(-1)
	vals := v.Values()
	if vals["0"] != 7 || vals["1"] != 1 {
		t.Fatalf("Values() = %v", vals)
	}
	s := r.Snapshot()
	if got := s.Gauges[`coord_shard_queue_depth{shard="0"}`]; got != 7 {
		t.Fatalf("snapshot labeled gauge = %d, want 7", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE coord_shard_queue_depth gauge",
		`coord_shard_queue_depth{shard="0"} 7`,
		`coord_shard_queue_depth{shard="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Nil safety mirrors the other handle types.
	var nilv *GaugeVec
	nilv.With("x").Set(1)
	if nilv.Values() != nil {
		t.Fatal("nil GaugeVec.Values should be nil")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registering the same name must return the same counter")
	}
	h1 := r.Histogram("h", "h", []float64{1})
	h2 := r.Histogram("h", "h", []float64{1})
	if h1 != h2 {
		t.Fatal("re-registering the same histogram must return the same handle")
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry = Nop
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	fg := r.FloatGauge("fg", "")
	h := r.Histogram("h", "", nil)
	v := r.CounterVec("v", "", "l")
	if c != nil || g != nil || fg != nil || h != nil || v != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic.
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	fg.Set(1)
	h.Observe(1)
	v.With("x").Inc()
	if c.Value() != 0 || g.Value() != 0 || fg.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.FloatGauge == nil || s.Histograms == nil {
		t.Fatal("nil registry Snapshot must return non-nil maps")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1, 2})
	v := r.CounterVec("v_total", "", "k")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", w%3)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%3) + 0.5)
				v.With(key).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	total := int64(0)
	for _, n := range v.Values() {
		total += n
	}
	if total != workers*per {
		t.Fatalf("vec total = %d, want %d", total, workers*per)
	}
	if want := float64(workers) * (per/3*(0.5+1.5+2.5) + 0.5); math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

func TestCountersWithPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign_b_total", "").Add(2)
	r.Counter("campaign_a_total", "").Add(1)
	r.Counter("other_total", "").Add(9)
	keys, vals := r.Snapshot().CountersWithPrefix("campaign_")
	if !reflect.DeepEqual(keys, []string{"campaign_a_total", "campaign_b_total"}) {
		t.Fatalf("keys = %v", keys)
	}
	if !reflect.DeepEqual(vals, []int64{1, 2}) {
		t.Fatalf("vals = %v", vals)
	}
}

// parsePrometheusText is a minimal validator for the text exposition
// format 0.0.4: HELP/TYPE comments, then `name[{label="value"}] value`
// sample lines whose value parses as a float. Returns sample count per
// metric family.
func parsePrometheusText(t *testing.T, r io.Reader) map[string]int {
	t.Helper()
	families := map[string]int{}
	typed := map[string]string{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", lineNo, line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: invalid TYPE %q", lineNo, parts[3])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", lineNo, line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("line %d: value %q does not parse: %v", lineNo, val, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels := name[i:]
			if !strings.HasSuffix(labels, "}") || !strings.Contains(labels, "=\"") {
				t.Fatalf("line %d: malformed labels %q", lineNo, labels)
			}
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE line", lineNo, name)
		}
		families[base]++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return families
}

func TestWritePrometheusValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("slots_total", "slots").Add(42)
	r.Gauge("depth", "depth").Set(-3)
	r.FloatGauge("rate", "rate").Set(17.25)
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	v := r.CounterVec("skips_total", "skips", "reason")
	v.With("gso").Inc()
	v.With("no-sats").Add(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	families := parsePrometheusText(t, strings.NewReader(out))
	if families["slots_total"] != 1 || families["depth"] != 1 || families["rate"] != 1 {
		t.Fatalf("missing scalar samples: %v\n%s", families, out)
	}
	// Histogram: 3 bucket lines (two bounds + +Inf) + sum + count.
	if families["lat_seconds"] != 5 {
		t.Fatalf("histogram samples = %d, want 5\n%s", families["lat_seconds"], out)
	}
	if families["skips_total"] != 2 {
		t.Fatalf("vec samples = %d, want 2\n%s", families["skips_total"], out)
	}
	// Buckets must be cumulative and end at the total count.
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{le="0.001"} 1`) {
		t.Fatalf("first bucket not cumulative:\n%s", out)
	}
	// Labeled samples must come out sorted by label value.
	if strings.Index(out, `reason="gso"`) > strings.Index(out, `reason="no-sats"`) {
		t.Fatalf("vec samples not sorted:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if m["c_total"] != float64(7) {
		t.Fatalf("c_total = %v", m["c_total"])
	}
	h, ok := m["h"].(map[string]any)
	if !ok || h["count"] != float64(1) {
		t.Fatalf("histogram object = %v", m["h"])
	}
}

func TestDecisionTraceRing(t *testing.T) {
	tr := NewDecisionTrace(3)
	for i := 1; i <= 5; i++ {
		tr.Record(Decision{Terminal: fmt.Sprintf("t%d", i), ChosenID: i})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Recorded() != 5 {
		t.Fatalf("Recorded = %d, want 5", tr.Recorded())
	}
	snap := tr.Snapshot()
	ids := make([]int, len(snap))
	for i, d := range snap {
		ids[i] = d.ChosenID
	}
	if !reflect.DeepEqual(ids, []int{3, 4, 5}) {
		t.Fatalf("snapshot order = %v, want oldest-first [3 4 5]", ids)
	}
}

func TestDecisionTraceNil(t *testing.T) {
	var tr *DecisionTrace
	tr.Record(Decision{})
	if tr.Len() != 0 || tr.Recorded() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil trace must no-op")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil trace wrote %q", buf.String())
	}
}

func TestDecisionJSONLRoundTrip(t *testing.T) {
	in := []Decision{
		{
			SlotStart: time.Date(2024, 3, 1, 12, 0, 15, 0, time.UTC),
			Terminal:  "seattle",
			ChosenID:  4431,
			ChosenAOE: 61.5,
			Rejected: []RejectedCandidate{
				{SatID: 5120, AOEDeg: 58.2, AzimuthDeg: 184.0, AgeYears: 1.7, Sunlit: true},
				{SatID: 3300, AOEDeg: 41.9, AzimuthDeg: 12.5, AgeYears: 3.2},
			},
		},
		{
			SlotStart:  time.Date(2024, 3, 1, 12, 0, 30, 0, time.UTC),
			Terminal:   "seattle",
			SkipReason: "no-visible-satellite",
		},
	}
	var buf bytes.Buffer
	enc := NewDecisionEncoder(&buf)
	for i := range in {
		if err := enc.Encode(&in[i]); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(in) {
		t.Fatalf("expected %d lines, got %d:\n%s", len(in), got, buf.String())
	}
	out, err := ReadDecisions(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDecisionTraceWriteJSONL(t *testing.T) {
	tr := NewDecisionTrace(8)
	tr.Record(Decision{Terminal: "a", ChosenID: 1})
	tr.Record(Decision{Terminal: "b", SkipReason: "gso-arc"})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	out, err := ReadDecisions(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != 2 || out[0].Terminal != "a" || out[1].SkipReason != "gso-arc" {
		t.Fatalf("decoded = %+v", out)
	}
}

func TestDecisionDecoderSkipsBlankAndReportsLine(t *testing.T) {
	out, err := ReadDecisions(strings.NewReader("\n{\"terminal\":\"x\"}\n\n"))
	if err != nil || len(out) != 1 || out[0].Terminal != "x" {
		t.Fatalf("out=%+v err=%v", out, err)
	}
	_, err = ReadDecisions(strings.NewReader("{\"terminal\":\"x\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestServerServesAndShutsDown(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign_slots_total", "slots").Add(9)
	tr := NewDecisionTrace(4)
	tr.Record(Decision{Terminal: "x", ChosenID: 2})
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := StartServer(ctx, "127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "campaign_slots_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	decisions, err := ReadDecisions(strings.NewReader(get("/debug/decisions")))
	if err != nil || len(decisions) != 1 || decisions[0].ChosenID != 2 {
		t.Fatalf("/debug/decisions = %+v err=%v", decisions, err)
	}
	cancel()
	if err := srv.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNop(b *testing.B) {
	c := Nop.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_lat", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkHistogramObserveNop(b *testing.B) {
	h := Nop.Histogram("bench_lat", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_vec_total", "", "reason")
	v.With("warm")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("warm").Inc()
	}
}

func TestZeroAllocRecordPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.001) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
}
