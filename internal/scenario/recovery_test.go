package scenario_test

import (
	"context"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// TestPlantedPreferenceRecovery is the generalization payoff asserted
// pass/fail: a Walker-star scenario (OneWeb geometry the study never
// measured) plants preference weights elevation > sunlit > recency,
// and the paper's inference pipeline — behavioral effects plus the §6
// forest — must recover that ordering from chosen-vs-available
// observations alone, with the forest beating the availability
// baseline.
func TestPlantedPreferenceRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a forest on a 648-satellite campaign")
	}
	spec, err := scenario.LoadPreset("oneweb-star")
	if err != nil {
		t.Fatal(err)
	}
	spec.Campaign.Slots = 240 // the preset's 400 recovers too; 240 keeps CI fast
	built, err := spec.Build(scenario.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := built.Env.Observations(built.Slots)
	if err != nil {
		t.Fatal(err)
	}
	planted, ok := spec.PlantedWeights()
	if !ok {
		t.Fatal("oneweb-star preset lost its planted weights")
	}
	res, err := scenario.RunPreferenceRecovery(context.Background(), obs,
		planted, experiments.QuickModelConfig(spec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rows=%d planted=%v", res.Rows, res.PlantedOrder)
	t.Logf("observed effects=%v order=%v", res.ObservedEffects, res.ObservedOrder)
	t.Logf("forest effects=%v order=%v", res.ForestEffects, res.ForestOrder)
	t.Logf("model top-1 %.3f vs baseline %.3f", res.ModelTop1, res.BaselineTop1)

	if !res.ObservedOrderRecovered {
		t.Errorf("behavioral effects %v did not recover planted order %v", res.ObservedOrder, res.PlantedOrder)
	}
	if !res.OrderRecovered {
		t.Errorf("forest order %v did not recover planted order %v", res.ForestOrder, res.PlantedOrder)
	}
	if !res.ModelBeatsBaseline {
		t.Errorf("forest top-1 %.3f does not beat baseline %.3f", res.ModelTop1, res.BaselineTop1)
	}
	// The planted dominant axis must stand out, not win by a hair.
	if res.ObservedEffects["elevation"] < 2*res.ObservedEffects["sunlit"] {
		t.Errorf("elevation effect %.3f not well separated from sunlit %.3f",
			res.ObservedEffects["elevation"], res.ObservedEffects["sunlit"])
	}
}
