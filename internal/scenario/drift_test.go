package scenario

import (
	"math"
	"testing"

	"repro/internal/predict"
)

// TestRunDrift walks the full adversarial arc against a synchronous
// in-process predict service: stationary accuracy in act one, a
// visible collapse and a bounded-latency drift flag in act two,
// recovery by forced refit in act three — plus the offline §6
// cross-check on the stationary phase.
func TestRunDrift(t *testing.T) {
	svc, err := predict.NewService(predict.Config{
		Window: 512, RefitEvery: 128, MinFit: 256,
		Trees: 20, MaxDepth: 10, Seed: 7, Workers: 4,
		TopK: 5, AccWindow: 64, RefWindow: 256, DriftDrop: 0.15,
		Synchronous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDrift(DriftConfig{
		Seed: 3, Slots: 600, FlipAt: 300,
		Scorer:  svc,
		Offline: true,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("drift result: %+v", res)

	// Act one: the model learned the stationary policy.
	if res.PreTop1 < 0.3 {
		t.Errorf("pre-flip recent top-1 = %v, model never learned the default policy", res.PreTop1)
	}
	if res.Refits < 2 {
		t.Errorf("refits = %d, want >= 2 over 600 slots", res.Refits)
	}

	// Act two: the flip is visible and detected within bounded slots.
	if drop := res.PreTop1 - res.MinPostTop1; drop < 0.15 {
		t.Errorf("windowed top-1 dropped only %v after the weight flip (pre %v, floor %v)",
			drop, res.PreTop1, res.MinPostTop1)
	}
	if res.DetectSlots < 0 {
		t.Fatal("drift flag never fired after the weight flip")
	}
	if res.DetectSlots > 150 {
		t.Errorf("drift detected %d slots after the flip, want bounded by ~2 reference windows (150)", res.DetectSlots)
	}
	if res.DriftEvents < 1 {
		t.Errorf("drift events = %d, want >= 1", res.DriftEvents)
	}

	// Act three: retraining on the new regime recovers accuracy.
	if res.FinalTop1 <= res.MinPostTop1 {
		t.Errorf("final top-1 %v never recovered above the post-flip floor %v", res.FinalTop1, res.MinPostTop1)
	}
	if res.ClearSlots < 0 {
		t.Error("drift flag never cleared after retraining")
	}

	// Offline §6 cross-check: the online stationary accuracy should sit
	// near the batch-protocol holdout figure, and the batch model still
	// beats the baseline.
	if res.OfflineTop1 <= res.OfflineBaselineTop1 {
		t.Errorf("offline model top-1 %v <= baseline %v", res.OfflineTop1, res.OfflineBaselineTop1)
	}
	if diff := math.Abs(res.OfflineTop1 - res.PreTop1); diff > 0.2 {
		t.Errorf("online stationary top-1 %v vs offline %v: gap %v exceeds tolerance 0.2",
			res.PreTop1, res.OfflineTop1, diff)
	}
}

// TestRunDriftValidation covers the config gates.
func TestRunDriftValidation(t *testing.T) {
	if _, err := RunDrift(DriftConfig{}); err == nil {
		t.Error("nil scorer accepted")
	}
	svc, err := predict.NewService(predict.Config{Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDrift(DriftConfig{Scorer: svc, Slots: 10, FlipAt: 10}); err == nil {
		t.Error("flip at campaign end accepted")
	}
}
