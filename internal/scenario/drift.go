package scenario

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
)

// The drift experiment: run a campaign under the default scheduler
// weights long enough for an online model to learn the policy, then
// flip the weights mid-campaign — the operator "pushes a scheduler
// update" — and keep streaming. A healthy online-inference loop shows
// three acts: windowed accuracy collapses right after the flip, the
// drift detector raises its flag within a bounded number of slots, and
// the forced sliding-window refit re-learns the new policy until the
// flag clears. It is the online counterpart of the paper's caveat that
// the §6 model encodes one scheduling policy, not physics.

// FlippedWeights is the adversarial mid-campaign scheduler update:
// elevation preference and recency swap magnitudes and the sunlit bias
// collapses, so the policy the model learned inverts while every
// candidate set stays physically identical.
func FlippedWeights() scheduler.Weights {
	w := scheduler.DefaultWeights()
	w.Elevation, w.Recency = w.Recency, w.Elevation
	w.Sunlit = 0.2
	w.Load = 2.5
	return w
}

// DriftConfig shapes a RunDrift campaign.
type DriftConfig struct {
	// Scale and Seed size the constellation (defaults: Small, 1).
	Scale experiments.Scale
	Seed  int64
	// Slots is the total campaign length; FlipAt is the slot index at
	// which the scheduler weights change (defaults 600, Slots/2).
	Slots  int
	FlipAt int
	// PostWeights are the weights after the flip (nil = FlippedWeights).
	PostWeights *scheduler.Weights
	// Scorer is the online service under test (required). Use a
	// Synchronous predict.Service for deterministic output, or a
	// predict.RemoteScorer to drive a live predictd.
	Scorer pipeline.OnlineScorer
	// Offline also trains the §6 offline model on the pre-flip
	// observations (cfg from experiments.QuickModelConfig) so the
	// stationary online accuracy can be compared against Figure 8.
	Offline bool
	// Workers / SnapshotWorkers / Telemetry are passed to both phases'
	// environments.
	Workers         int
	SnapshotWorkers int
	Telemetry       *telemetry.Registry
}

// DriftResult summarizes the three acts.
type DriftResult struct {
	Slots, FlipAt int
	// PreTop1/PreTopK are the scorer's windowed accuracies at the flip.
	PreTop1, PreTopK float64
	// MinPostTop1 is the windowed top-1 floor after the flip — how far
	// accuracy fell before retraining caught up.
	MinPostTop1 float64
	// FinalTop1 is the windowed top-1 at campaign end.
	FinalTop1 float64
	// DetectSlots is how many slots after the flip the drift flag rose
	// (-1: never); ClearSlots is when it cleared again (-1: never).
	DetectSlots, ClearSlots int
	// DriftEvents and Refits are the scorer's totals at campaign end.
	DriftEvents, Refits int
	// Scored counts records the scorer actually ranked.
	Scored int
	// PreStats/PostStats are the two phases' campaign summaries.
	PreStats, PostStats *core.CampaignStats
	// OfflineTop1/OfflineBaselineTop1 compare against the §6 batch
	// protocol on the pre-flip stream (zero when Offline is false).
	OfflineTop1, OfflineBaselineTop1 float64
}

// driftTracker folds ScoreUpdates into the result, counting slots by
// SlotStart transitions (each slot yields one record per terminal).
type driftTracker struct {
	res      *DriftResult
	sc       pipeline.OnlineScorer
	lastSlot time.Time
	slotIdx  int // 0-based within the current phase
	post     bool
	sawDrift bool
}

func (d *driftTracker) sink() pipeline.Sink {
	return pipeline.ScoreSink(d.sc, d.observe)
}

func (d *driftTracker) observe(rec *pipeline.Record, up pipeline.ScoreUpdate) {
	if !rec.SlotStart.Equal(d.lastSlot) {
		if !d.lastSlot.IsZero() {
			d.slotIdx++
		}
		d.lastSlot = rec.SlotStart
	}
	r := d.res
	if up.Scored {
		r.Scored++
	}
	r.DriftEvents = up.DriftEvents
	r.Refits = up.Refits
	if !d.post {
		r.PreTop1, r.PreTopK = up.RecentTop1, up.RecentTopK
		return
	}
	if up.Scored && up.RecentTop1 < r.MinPostTop1 {
		r.MinPostTop1 = up.RecentTop1
	}
	if up.Drift && !d.sawDrift {
		d.sawDrift = true
		r.DetectSlots = d.slotIdx
	}
	if d.sawDrift && !up.Drift && r.ClearSlots < 0 {
		r.ClearSlots = d.slotIdx
	}
	r.FinalTop1 = up.RecentTop1
}

// RunDrift executes the two-phase campaign against cfg.Scorer. Both
// phases share one constellation (same scale and seed), and phase two
// starts exactly FlipAt periods after phase one's epoch, so the stream
// the scorer sees is one continuous campaign whose only discontinuity
// is the scheduler's weights. (The post-flip scheduler restarts its
// load/recency bookkeeping — the real analogue is a scheduler redeploy,
// which also resets in-memory state.)
func RunDrift(cfg DriftConfig) (*DriftResult, error) {
	if cfg.Scorer == nil {
		return nil, fmt.Errorf("scenario: drift needs an online scorer")
	}
	if cfg.Scale == "" {
		cfg.Scale = experiments.Small
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Slots == 0 {
		cfg.Slots = 600
	}
	if cfg.FlipAt == 0 {
		cfg.FlipAt = cfg.Slots / 2
	}
	if cfg.FlipAt <= 0 || cfg.FlipAt >= cfg.Slots {
		return nil, fmt.Errorf("scenario: flip slot %d outside campaign of %d slots", cfg.FlipAt, cfg.Slots)
	}
	post := FlippedWeights()
	if cfg.PostWeights != nil {
		post = *cfg.PostWeights
	}

	base := experiments.Config{
		Scale:           cfg.Scale,
		Seed:            cfg.Seed,
		Workers:         cfg.Workers,
		SnapshotWorkers: cfg.SnapshotWorkers,
		Telemetry:       cfg.Telemetry,
	}
	envA, err := experiments.NewEnv(base)
	if err != nil {
		return nil, err
	}
	postCfg := base
	postCfg.Weights = post
	envB, err := experiments.NewEnv(postCfg)
	if err != nil {
		return nil, err
	}

	res := &DriftResult{
		Slots: cfg.Slots, FlipAt: cfg.FlipAt,
		MinPostTop1: 1, DetectSlots: -1, ClearSlots: -1,
	}
	tr := &driftTracker{res: res, sc: cfg.Scorer}

	// Phase one: learn the default policy.
	collect := &pipeline.CollectObservations{}
	sinks := []pipeline.Sink{tr.sink()}
	if cfg.Offline {
		sinks = append(sinks, collect)
	}
	res.PreStats, err = envA.StreamObservations(cfg.FlipAt, sinks...)
	if err != nil {
		return nil, fmt.Errorf("scenario: drift pre-flip phase: %w", err)
	}

	// Phase two: same constellation, same clock, new weights. Slot
	// counting restarts at the flip boundary.
	tr.post = true
	tr.lastSlot = time.Time{}
	tr.slotIdx = 0
	src := &pipeline.Campaign{Config: core.CampaignConfig{
		Scheduler:  envB.Sched,
		Identifier: envB.Ident,
		Start:      envA.Start().Add(time.Duration(cfg.FlipAt) * scheduler.Period),
		Slots:      cfg.Slots - cfg.FlipAt,
		Oracle:     true,
		Workers:    envB.Workers,
		Metrics:    envB.Metrics,
		Snapshots:  envB.Snaps,
	}}
	p := &pipeline.Pipeline{
		Source:  src,
		Stages:  []pipeline.Stage{pipeline.ChosenOnly()},
		Sinks:   []pipeline.Sink{tr.sink()},
		Metrics: pipeline.NewMetrics(cfg.Telemetry),
	}
	if err := p.Run(context.Background()); err != nil {
		return nil, fmt.Errorf("scenario: drift post-flip phase: %w", err)
	}
	res.PostStats = src.Stats

	if cfg.Offline {
		mres, err := envA.Fig8(collect.Obs, experiments.QuickModelConfig(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("scenario: drift offline comparison: %w", err)
		}
		res.OfflineTop1 = mres.ModelTopK[0]
		res.OfflineBaselineTop1 = mres.BaselineTopK[0]
	}
	return res, nil
}
