package scenario

import (
	"fmt"

	"repro/internal/astro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// BuildOptions carries host-side knobs that are not part of the spec:
// instrumentation and machine-shape overrides. The zero value is a
// plain build.
type BuildOptions struct {
	// Telemetry wires the environment into a registry (nil disables).
	Telemetry *telemetry.Registry
	// TraceDecisions > 0 records the last N campaign decisions.
	TraceDecisions int
	// DisableIndex forces linear visibility scans (ablation).
	DisableIndex bool
	// Workers / SnapshotWorkers override the spec's campaign values
	// when non-zero (CLI flags beat the file; results are identical
	// at every value, only the cost changes).
	Workers         int
	SnapshotWorkers int
}

// Built is a lowered scenario: the ready environment plus the
// campaign shape the spec asked for.
type Built struct {
	Spec *Spec
	Env  *experiments.Env
	// Slots/Oracle/ResetEvery shape the main campaign; IdentSlots
	// bounds the §4 identification-validation run.
	Slots      int
	IdentSlots int
	Oracle     bool
	ResetEvery int
}

// EnvConfig lowers the spec into an experiments.Config. Host-side
// knobs (telemetry, tracing, worker overrides) come from opt.
func (s *Spec) EnvConfig(opt BuildOptions) (experiments.Config, error) {
	shells, err := s.Shells()
	if err != nil {
		return experiments.Config{}, err
	}
	vps, err := s.VantagePoints()
	if err != nil {
		return experiments.Config{}, err
	}
	epoch, err := s.epoch()
	if err != nil {
		return experiments.Config{}, err
	}
	gsoProtection := s.Scheduler.GSOProtectionDeg
	if s.Scheduler.DisableGSO {
		gsoProtection = -1
	}
	var gs []astro.Geodetic
	for _, g := range s.Scheduler.GroundStations {
		gs = append(gs, astro.Geodetic{LatDeg: g.LatDeg, LonDeg: g.LonDeg, AltKm: g.AltKm})
	}
	workers := s.Campaign.Workers
	if opt.Workers != 0 {
		workers = opt.Workers
	}
	snapWorkers := s.Campaign.SnapshotWorkers
	if opt.SnapshotWorkers != 0 {
		snapWorkers = opt.SnapshotWorkers
	}
	return experiments.Config{
		Seed:                  s.Seed,
		Shells:                shells,
		NamePrefix:            s.Constellation.NamePrefix,
		Epoch:                 epoch,
		JitterDeg:             s.Constellation.JitterDeg,
		UseKeplerJ2:           s.Constellation.UseKeplerJ2,
		Weights:               s.Scheduler.Weights.weights(),
		MinElevationDeg:       s.Scheduler.MinElevationDeg,
		GSOProtectionDeg:      gsoProtection,
		GroundStations:        gs,
		DisableGroundStations: s.Scheduler.DisableGroundStations,
		GSMinElevationDeg:     s.Scheduler.GSMinElevationDeg,
		DisableBattery:        s.Scheduler.DisableBattery,
		VantagePoints:         vps,
		Workers:               workers,
		SnapshotWorkers:       snapWorkers,
		Telemetry:             opt.Telemetry,
		TraceDecisions:        opt.TraceDecisions,
		DisableIndex:          opt.DisableIndex,
	}, nil
}

// Build validates the spec and lowers it into a ready environment.
func (s *Spec) Build(opt BuildOptions) (*Built, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg, err := s.EnvConfig(opt)
	if err != nil {
		return nil, err
	}
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	identSlots := s.Campaign.IdentSlots
	if identSlots == 0 {
		identSlots = s.Campaign.Slots
		if identSlots > 125 {
			identSlots = 125 // the study's 500-identification budget
		}
	}
	return &Built{
		Spec:       s,
		Env:        env,
		Slots:      s.Campaign.Slots,
		IdentSlots: identSlots,
		Oracle:     s.Campaign.Oracle,
		ResetEvery: s.Campaign.ResetEvery,
	}, nil
}

// CampaignConfig lowers the built scenario into the campaign engine's
// config — the same construction Env.CampaignSource uses, so a
// scenario that mirrors the default environment produces a
// bit-identical record stream.
func (b *Built) CampaignConfig() core.CampaignConfig {
	return core.CampaignConfig{
		Scheduler:    b.Env.Sched,
		Identifier:   b.Env.Ident,
		Start:        b.Env.Start(),
		Slots:        b.Slots,
		Oracle:       b.Oracle,
		ResetEvery:   b.ResetEvery,
		Workers:      b.Env.Workers,
		Metrics:      b.Env.Metrics,
		Snapshots:    b.Env.Snaps,
		DisableIndex: b.Env.DisableIndex,
	}
}
