package scenario

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/scheduler"
)

// The planted-preference recovery experiment: a scenario plants known
// scheduler weights, a campaign records chosen-vs-available
// observations, and the paper's inference pipeline (§5 behavioral
// effects + the §6 forest) must recover the planted preference
// ordering. This is the generalization payoff — the methodology
// working on geometry (Walker-star) and preferences the study never
// saw.
//
// Every axis is measured the same way, so magnitudes are comparable:
// the chosen satellite's percentile rank (midrank ties) on that axis
// within the slot's available set, averaged over slots where the axis
// varies, rescaled to [-1, 1] (0 = no preference, 1 = always strictly
// top). The forest-side twin ranks the *predicted* cluster key against
// the availability-weighted cluster distribution of each feature row.
// Binary axes (sunlit) cap below 1 because ties midrank — fine for
// well-separated planted weights, the documented resolution limit.

// RecoveryAxes lists the measured preference axes in report order.
var RecoveryAxes = []string{"elevation", "sunlit", "recency"}

// RecoveryResult is the planted-vs-recovered comparison.
type RecoveryResult struct {
	Planted scheduler.Weights
	// PlantedOrder is the axes sorted by descending planted weight.
	PlantedOrder []string
	// ObservedEffects / ObservedOrder come from the §5-style
	// behavioral ranks over raw observations.
	ObservedEffects map[string]float64
	ObservedOrder   []string
	// ForestEffects / ForestOrder come from the §6 forest's top-1
	// predicted clusters.
	ForestEffects map[string]float64
	ForestOrder   []string
	// OrderRecovered: the forest order matches the planted order.
	// ObservedOrderRecovered: the behavioral order does too.
	OrderRecovered         bool
	ObservedOrderRecovered bool
	// ModelTop1/BaselineTop1 are holdout top-1 accuracies;
	// ModelBeatsBaseline is the paper's "model learned something"
	// criterion.
	ModelTop1, BaselineTop1 float64
	ModelBeatsBaseline      bool
	// Rows is the number of usable (served) observations.
	Rows int
}

// plantedOrder sorts the recovery axes by their planted weights,
// requiring strict separation — equal weights have no recoverable
// order.
func plantedOrder(w scheduler.Weights) ([]string, error) {
	vals := map[string]float64{"elevation": w.Elevation, "sunlit": w.Sunlit, "recency": w.Recency}
	if vals["elevation"] == vals["sunlit"] || vals["sunlit"] == vals["recency"] || vals["elevation"] == vals["recency"] {
		return nil, fmt.Errorf("scenario: planted weights must strictly separate elevation/sunlit/recency (got %.3g/%.3g/%.3g)",
			vals["elevation"], vals["sunlit"], vals["recency"])
	}
	return orderOf(vals), nil
}

// orderOf returns the recovery axes sorted by descending value.
func orderOf(vals map[string]float64) []string {
	out := append([]string(nil), RecoveryAxes...)
	sort.SliceStable(out, func(i, j int) bool { return vals[out[i]] > vals[out[j]] })
	return out
}

// rankAccum averages percentile ranks for one axis.
type rankAccum struct {
	sum float64
	n   int
}

// add folds in one slot's rank: below/equal/total are the axis-value
// counts (or weights) relative to the chosen value, equal including
// the chosen itself. Slots where the axis does not vary carry no
// preference information and are skipped.
func (a *rankAccum) add(below, equal, total float64) {
	if total <= 0 || equal >= total {
		return
	}
	a.sum += (below + equal/2) / total
	a.n++
}

// effect rescales the mean rank to [-1, 1].
func (a *rankAccum) effect() float64 {
	if a.n == 0 {
		return 0
	}
	return 2*(a.sum/float64(a.n)) - 1
}

// observedEffects computes the behavioral per-axis effects from raw
// observations.
func observedEffects(obs []core.Observation) (map[string]float64, int) {
	var elev, sun, rec rankAccum
	rows := 0
	for i := range obs {
		o := &obs[i]
		c, ok := o.Chosen()
		if !ok || len(o.Available) < 2 {
			continue
		}
		rows++
		var elevBelow, elevEq, sunBelow, sunEq, recBelow, recEq float64
		for _, a := range o.Available {
			switch {
			case a.ElevationDeg < c.ElevationDeg:
				elevBelow++
			case a.ElevationDeg == c.ElevationDeg:
				elevEq++
			}
			switch {
			case !a.Sunlit && c.Sunlit:
				sunBelow++
			case a.Sunlit == c.Sunlit:
				sunEq++
			}
			// Recency prefers newer hardware: smaller age ranks higher.
			switch {
			case a.AgeYears > c.AgeYears:
				recBelow++
			case a.AgeYears == c.AgeYears:
				recEq++
			}
		}
		n := float64(len(o.Available))
		elev.add(elevBelow, elevEq, n)
		sun.add(sunBelow, sunEq, n)
		rec.add(recBelow, recEq, n)
	}
	return map[string]float64{
		"elevation": elev.effect(),
		"sunlit":    sun.effect(),
		"recency":   rec.effect(),
	}, rows
}

// axisValue extracts one axis's scalar from a cluster key (recency is
// negated age so that "higher = preferred" holds on every axis).
func axisValue(axis string, k features.Key) float64 {
	switch axis {
	case "elevation":
		return float64(k.ElZ)
	case "sunlit":
		if k.Sunlit {
			return 1
		}
		return 0
	case "recency":
		return -float64(k.AgeZ)
	}
	return 0
}

// forestEffects ranks each row's top-1 predicted cluster against the
// row's availability-weighted cluster distribution.
func forestEffects(ranker ml.Ranker, X [][]float64) (map[string]float64, error) {
	accums := map[string]*rankAccum{}
	for _, ax := range RecoveryAxes {
		accums[ax] = &rankAccum{}
	}
	for _, x := range X {
		ranked, err := ranker.RankClasses(x)
		if err != nil {
			return nil, err
		}
		if len(ranked) == 0 {
			continue
		}
		pred, err := features.KeyFromIndex(ranked[0])
		if err != nil {
			return nil, err
		}
		counts := x[1:] // x[0] is local hour
		for _, ax := range RecoveryAxes {
			pv := axisValue(ax, pred)
			var below, equal, total float64
			for ci, w := range counts {
				if w <= 0 {
					continue
				}
				k, err := features.KeyFromIndex(ci)
				if err != nil {
					return nil, err
				}
				v := axisValue(ax, k)
				total += w
				switch {
				case v < pv:
					below += w
				case v == pv:
					equal += w
				}
			}
			accums[ax].add(below, equal, total)
		}
	}
	out := make(map[string]float64, len(RecoveryAxes))
	for _, ax := range RecoveryAxes {
		out[ax] = accums[ax].effect()
	}
	return out, nil
}

// sameOrder reports whether two axis orderings agree.
func sameOrder(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunPreferenceRecovery executes the inference side of the planted-
// preference experiment on an already-collected observation set:
// behavioral effects, §6 forest training (with the given model
// config), and the planted-vs-recovered order comparison.
func RunPreferenceRecovery(ctx context.Context, obs []core.Observation, planted scheduler.Weights, mcfg core.ModelConfig) (*RecoveryResult, error) {
	want, err := plantedOrder(planted)
	if err != nil {
		return nil, err
	}
	observed, rows := observedEffects(obs)
	if rows == 0 {
		return nil, fmt.Errorf("scenario: no served observations with choice to recover preferences from")
	}
	d, err := core.BuildDataset(obs)
	if err != nil {
		return nil, err
	}
	res, err := core.TrainModelCtx(ctx, d, mcfg)
	if err != nil {
		return nil, err
	}
	forestFx, err := forestEffects(ml.ForestRanker{Forest: res.Forest}, d.X)
	if err != nil {
		return nil, err
	}
	r := &RecoveryResult{
		Planted:         planted,
		PlantedOrder:    want,
		ObservedEffects: observed,
		ObservedOrder:   orderOf(observed),
		ForestEffects:   forestFx,
		ForestOrder:     orderOf(forestFx),
		ModelTop1:       res.ModelTopK[0],
		BaselineTop1:    res.BaselineTopK[0],
		Rows:            rows,
	}
	r.OrderRecovered = sameOrder(r.ForestOrder, want)
	r.ObservedOrderRecovered = sameOrder(r.ObservedOrder, want)
	r.ModelBeatsBaseline = r.ModelTop1 > r.BaselineTop1
	return r, nil
}
