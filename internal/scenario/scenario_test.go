package scenario_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/traceio"
)

// TestValidateAllPresets backs the CI guarantee: every checked-in
// preset parses strictly, validates, and is named after its file.
func TestValidateAllPresets(t *testing.T) {
	if err := scenario.ValidateAll(); err != nil {
		t.Fatal(err)
	}
	names := scenario.PresetNames()
	want := []string{"iridium-next", "kepler", "oneweb-star", "smoke", "starlink-baseline"}
	if len(names) != len(want) {
		t.Fatalf("presets %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("presets %v, want %v", names, want)
		}
	}
}

func TestStrictDecodingRejectsUnknownFields(t *testing.T) {
	_, err := scenario.Parse(strings.NewReader(`{
		"version": 1, "name": "x", "seed": 1,
		"constellation": {"preset": "kepler", "planess": 3},
		"terminals": {"preset": "study"},
		"scheduler": {},
		"campaign": {"slots": 10, "oracle": true}
	}`))
	if err == nil || !strings.Contains(err.Error(), "planess") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	_, err := scenario.Parse(strings.NewReader(`{
		"version": 1, "name": "x", "seed": 1,
		"constellation": {"preset": "kepler"},
		"terminals": {"preset": "study"},
		"scheduler": {},
		"campaign": {"slots": 10, "oracle": true}
	} {"more": true}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data not rejected: %v", err)
	}
}

// TestValidateReportsEveryError is the multi-error contract: one
// validation round surfaces every problem, not just the first.
func TestValidateReportsEveryError(t *testing.T) {
	s := &scenario.Spec{
		Version: 3,
		Name:    "bad spec",
		Constellation: scenario.ConstellationSpec{
			Shells: []scenario.ShellSpec{
				{Name: "s", Geometry: "walker-spiral", AltitudeKm: 80, InclinationDeg: 200, Planes: 4, SatsPerPlane: 4, PhasingF: 9},
			},
			Epoch: "yesterday",
		},
		Terminals: scenario.TerminalsSpec{
			Sites: []scenario.SiteSpec{
				{Name: "a", LatDeg: 95, LonDeg: 0},
				{Name: "a", LatDeg: 10, LonDeg: 10, PoP: "atlantis"},
			},
		},
		Scheduler: scenario.SchedulerSpec{
			Weights:         &scenario.WeightsSpec{},
			MinElevationDeg: 95,
		},
		Campaign: scenario.CampaignSpec{Slots: 0, Workers: -1},
		Outputs:  scenario.OutputsSpec{Analyses: []string{"vibes"}},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid spec validated")
	}
	msg := err.Error()
	for _, frag := range []string{
		"version 3",
		"contains whitespace",
		"walker-spiral",
		"non-physical altitude",
		"inclination 200.00",
		"phasing F=9",
		"epoch",
		"outside lat/lon range",
		"unknown pop \"atlantis\"",
		"duplicate terminal name \"a\"",
		"all zero",
		"min_elevation_deg 95.0",
		"slots 0",
		"workers -1",
		"unknown analysis \"vibes\"",
	} {
		if !strings.Contains(msg, frag) {
			t.Errorf("validation error missing %q:\n%s", frag, msg)
		}
	}
}

func TestResolveFileAndPreset(t *testing.T) {
	byName, err := scenario.Resolve("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if byName.Name != "smoke" {
		t.Fatalf("preset resolve got %q", byName.Name)
	}
	// A real file wins over the embedded preset namespace.
	dir := t.TempDir()
	path := filepath.Join(dir, "mine.json")
	b, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	byPath, err := scenario.Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if byPath.Name != "smoke" {
		t.Fatalf("file resolve got %q", byPath.Name)
	}
	if _, err := scenario.Resolve("no-such-preset"); err == nil {
		t.Fatal("unknown preset resolved")
	}
}

// streamBytes runs a campaign config and returns its traceio JSONL
// encoding — the byte-identity currency of every golden test.
func streamBytes(t *testing.T, cfg core.CampaignConfig) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := traceio.NewRecordEncoder(&buf)
	if _, err := core.RunCampaignStream(context.Background(), cfg, func(rec core.SlotRecord) error {
		return enc.Encode(&rec)
	}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStarlinkBaselineBitIdentical proves the scenario path subsumes
// the existing Starlink path: the starlink-baseline preset's campaign
// stream is byte-identical to the default experiments environment's.
func TestStarlinkBaselineBitIdentical(t *testing.T) {
	spec, err := scenario.LoadPreset("starlink-baseline")
	if err != nil {
		t.Fatal(err)
	}
	const slots = 12 // full preset runs 500; identity holds per-slot
	spec.Campaign.Slots = slots
	built, err := spec.Build(scenario.BuildOptions{Workers: 1, SnapshotWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fromScenario := streamBytes(t, built.CampaignConfig())

	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Medium, Seed: 7, Workers: 1, SnapshotWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fromDefault := streamBytes(t, env.CampaignSource(slots, true).Config)

	if built.Env.Cons.Fingerprint() != env.Cons.Fingerprint() {
		t.Fatal("scenario constellation fingerprint differs from the default environment's")
	}
	if !bytes.Equal(fromScenario, fromDefault) {
		t.Fatalf("starlink-baseline stream differs from the default campaign:\nscenario %d bytes, default %d bytes", len(fromScenario), len(fromDefault))
	}
	if len(fromScenario) == 0 {
		t.Fatal("empty golden stream")
	}
}

// TestWalkerStarPresetBuilds exercises a non-Starlink build end to
// end: OneWeb geometry, renamed satellites, distinct fingerprint.
func TestWalkerStarPresetBuilds(t *testing.T) {
	spec, err := scenario.LoadPreset("oneweb-star")
	if err != nil {
		t.Fatal(err)
	}
	spec.Campaign.Slots = 2
	built, err := spec.Build(scenario.BuildOptions{Workers: 1, SnapshotWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cons := built.Env.Cons
	if cons.Len() != 18*36 {
		t.Fatalf("OneWeb constellation has %d sats, want 648", cons.Len())
	}
	if !strings.HasPrefix(cons.Sats[0].Name, "ONEWEB-") {
		t.Fatalf("satellite name %q, want ONEWEB- prefix", cons.Sats[0].Name)
	}
	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Medium, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cons.Fingerprint() == env.Cons.Fingerprint() {
		t.Fatal("OneWeb fingerprint collides with Starlink medium")
	}
	if got := streamBytes(t, built.CampaignConfig()); len(got) == 0 {
		t.Fatal("empty OneWeb campaign stream")
	}
}

// TestScenarioTerminalPlacement checks the smoke preset lowers all
// three placement kinds in deterministic order.
func TestScenarioTerminalPlacement(t *testing.T) {
	spec, err := scenario.LoadPreset("smoke")
	if err != nil {
		t.Fatal(err)
	}
	vps, err := spec.VantagePoints()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ithaca", "grid-0", "grid-1", "rnd-0"}
	if len(vps) != len(want) {
		t.Fatalf("placed %d terminals, want %d", len(vps), len(want))
	}
	for i, vp := range vps {
		if vp.Name != want[i] {
			t.Fatalf("terminal %d named %q, want %q", i, vp.Name, want[i])
		}
	}
	if vps[0].Mask == nil {
		t.Fatal("site mask not lowered")
	}
	again, err := spec.VantagePoints()
	if err != nil {
		t.Fatal(err)
	}
	for i := range vps {
		if vps[i].Location != again[i].Location {
			t.Fatalf("placement not deterministic at %d", i)
		}
	}
}
