// Package scenario is the declarative front door to the reproduction:
// a versioned JSON spec describing constellation design, terminal
// placement, scheduler configuration, campaign shape, and outputs,
// lowered into a ready experiments.Env / core.CampaignConfig. The
// paper's methodology — identification (§4) plus preference inference
// (§5–§6) — is constellation-agnostic; the spec makes the subject of
// study (Starlink Walker-delta, OneWeb/Iridium/Kepler Walker-star,
// or anything expressible as shells) data instead of code.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/scheduler"
	"repro/scenarios"
)

// SpecVersion is the schema version this package reads.
const SpecVersion = 1

// Spec is one complete scenario. The zero value is invalid; specs are
// produced by Parse/Load (strict: unknown fields are errors) or built
// in Go and checked with Validate.
type Spec struct {
	Version     int    `json:"version"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives constellation jitter, scheduler load/noise, and (by
	// default) random terminal placement.
	Seed int64 `json:"seed"`

	Constellation ConstellationSpec `json:"constellation"`
	Terminals     TerminalsSpec     `json:"terminals"`
	Scheduler     SchedulerSpec     `json:"scheduler"`
	Campaign      CampaignSpec      `json:"campaign"`
	Outputs       OutputsSpec       `json:"outputs,omitempty"`
}

// ConstellationSpec selects the constellation design: a named preset
// or explicit shells (exactly one).
type ConstellationSpec struct {
	// Preset names a built-in design: starlink-small, starlink-medium,
	// starlink-full (the experiments scales), oneweb, iridium-next,
	// kepler (Walker-star presets).
	Preset string `json:"preset,omitempty"`
	// Shells is an explicit design; overridden by nothing, mutually
	// exclusive with Preset.
	Shells []ShellSpec `json:"shells,omitempty"`
	// NamePrefix names satellites "<prefix>-<n>" (default STARLINK).
	NamePrefix string `json:"name_prefix,omitempty"`
	// Epoch is the TLE epoch, RFC3339 (default the 2023-03-01 study
	// epoch).
	Epoch string `json:"epoch,omitempty"`
	// JitterDeg is the 1-sigma orbital-element perturbation; 0 keeps
	// the 0.15° default.
	JitterDeg float64 `json:"jitter_deg,omitempty"`
	// UseKeplerJ2 swaps in the ablation propagator.
	UseKeplerJ2 bool `json:"use_kepler_j2,omitempty"`
}

// ShellSpec is one Walker shell.
type ShellSpec struct {
	Name           string  `json:"name"`
	Geometry       string  `json:"geometry,omitempty"` // walker-delta (default) | walker-star
	AltitudeKm     float64 `json:"altitude_km"`
	InclinationDeg float64 `json:"inclination_deg"`
	Planes         int     `json:"planes"`
	SatsPerPlane   int     `json:"sats_per_plane"`
	PhasingF       int     `json:"phasing_f"`
}

// shell lowers the spec form to the constellation type.
func (sh ShellSpec) shell() constellation.Shell {
	return constellation.Shell{
		Name:           sh.Name,
		AltitudeKm:     sh.AltitudeKm,
		InclinationDeg: sh.InclinationDeg,
		Planes:         sh.Planes,
		SatsPerPlane:   sh.SatsPerPlane,
		PhasingF:       sh.PhasingF,
		Geometry:       constellation.Geometry(sh.Geometry),
	}
}

// TerminalsSpec places the campaign's terminals: a named preset plus
// any mix of explicit sites, grids, and seeded random scatters. At
// least one terminal must result.
type TerminalsSpec struct {
	// Preset: "study" (the paper's four sites) or "southern" (§8).
	Preset string       `json:"preset,omitempty"`
	Sites  []SiteSpec   `json:"sites,omitempty"`
	Grids  []GridSpec   `json:"grids,omitempty"`
	Random []RandomSpec `json:"random,omitempty"`
}

// SiteSpec is one explicit terminal site.
type SiteSpec struct {
	Name   string  `json:"name"`
	LatDeg float64 `json:"lat_deg"`
	LonDeg float64 `json:"lon_deg"`
	AltKm  float64 `json:"alt_km,omitempty"`
	// UTCOffsetHours is the site's standard-time offset; omitted, it
	// is derived from the longitude (15°/hour).
	UTCOffsetHours *int `json:"utc_offset_hours,omitempty"`
	// PoP names the point of presence the terminal homes to (must be
	// a known study PoP when set).
	PoP string `json:"pop,omitempty"`
	// Mask lists obstruction sectors (azimuth range → minimum clear
	// elevation), like the study's New York tree line.
	Mask []MaskSectorSpec `json:"mask,omitempty"`
}

// MaskSectorSpec is one obstruction sector of a site mask.
type MaskSectorSpec struct {
	AzFromDeg  float64 `json:"az_from_deg"`
	AzToDeg    float64 `json:"az_to_deg"`
	MinElevDeg float64 `json:"min_elev_deg"`
}

// RegionSpec is a lat/lon bounding box (antimeridian-crossing boxes
// use lon_min > lon_max).
type RegionSpec struct {
	LatMinDeg float64 `json:"lat_min_deg"`
	LatMaxDeg float64 `json:"lat_max_deg"`
	LonMinDeg float64 `json:"lon_min_deg"`
	LonMaxDeg float64 `json:"lon_max_deg"`
}

func (r RegionSpec) region() geo.Region {
	return geo.Region{LatMinDeg: r.LatMinDeg, LatMaxDeg: r.LatMaxDeg, LonMinDeg: r.LonMinDeg, LonMaxDeg: r.LonMaxDeg}
}

// GridSpec places rows×cols terminals evenly over a region.
type GridSpec struct {
	Prefix string     `json:"prefix"`
	Region RegionSpec `json:"region"`
	Rows   int        `json:"rows"`
	Cols   int        `json:"cols"`
	AltKm  float64    `json:"alt_km,omitempty"`
}

// RandomSpec scatters count terminals area-uniformly within a region.
type RandomSpec struct {
	Prefix string     `json:"prefix"`
	Region RegionSpec `json:"region"`
	Count  int        `json:"count"`
	AltKm  float64    `json:"alt_km,omitempty"`
	// Seed, when set, decouples this scatter from the scenario seed.
	Seed *int64 `json:"seed,omitempty"`
}

// SchedulerSpec configures the ground-truth scheduler.
type SchedulerSpec struct {
	// Weights plants explicit preference weights; omitted uses the
	// study defaults. An all-zero weights object is rejected (the
	// scheduler would silently substitute the defaults) — omit the
	// field instead.
	Weights *WeightsSpec `json:"weights,omitempty"`
	// MinElevationDeg is the terminal hardware mask, applied to both
	// scheduling and the identifier's available sets (0 keeps 25°).
	MinElevationDeg float64 `json:"min_elevation_deg,omitempty"`
	// GSOProtectionDeg overrides the GSO-belt exclusion half-angle.
	GSOProtectionDeg float64 `json:"gso_protection_deg,omitempty"`
	// DisableGSO removes the exclusion zone (ablation).
	DisableGSO bool `json:"disable_gso,omitempty"`
	// GroundStations overrides the gateway sites for the bent-pipe
	// constraint; omitted uses the study PoPs' co-located gateways.
	GroundStations []LocationSpec `json:"ground_stations,omitempty"`
	// DisableGroundStations removes the bent-pipe constraint.
	DisableGroundStations bool `json:"disable_ground_stations,omitempty"`
	// GSMinElevationDeg is the gateway visibility mask (0 keeps 25°).
	GSMinElevationDeg float64 `json:"gs_min_elevation_deg,omitempty"`
	// DisableBattery removes the satellite energy model (ablation).
	DisableBattery bool `json:"disable_battery,omitempty"`
}

// WeightsSpec mirrors scheduler.Weights in spec form.
type WeightsSpec struct {
	Elevation    float64 `json:"elevation"`
	GSOClearance float64 `json:"gso_clearance"`
	Recency      float64 `json:"recency"`
	Sunlit       float64 `json:"sunlit"`
	Load         float64 `json:"load"`
	Charge       float64 `json:"charge"`
	NoiseStd     float64 `json:"noise_std"`
}

// weights lowers the spec form to the scheduler type.
func (w *WeightsSpec) weights() scheduler.Weights {
	if w == nil {
		return scheduler.Weights{} // zero value selects the defaults
	}
	return scheduler.Weights{
		Elevation:    w.Elevation,
		GSOClearance: w.GSOClearance,
		Recency:      w.Recency,
		Sunlit:       w.Sunlit,
		Load:         w.Load,
		Charge:       w.Charge,
		NoiseStd:     w.NoiseStd,
	}
}

// PlantedWeights returns the spec's explicit scheduler weights, false
// when the spec leaves the study defaults in place. The recovery
// experiment compares inference output against exactly these.
func (s *Spec) PlantedWeights() (scheduler.Weights, bool) {
	if s.Scheduler.Weights == nil {
		return scheduler.Weights{}, false
	}
	return s.Scheduler.Weights.weights(), true
}

// LocationSpec is a bare geodetic position.
type LocationSpec struct {
	LatDeg float64 `json:"lat_deg"`
	LonDeg float64 `json:"lon_deg"`
	AltKm  float64 `json:"alt_km,omitempty"`
}

// CampaignSpec shapes the measurement campaign.
type CampaignSpec struct {
	// Slots is the number of 15-second allocation slots.
	Slots int `json:"slots"`
	// Oracle skips DTW identification and records scheduler ground
	// truth (the §5/§6 input mode; §4 validates identification
	// separately via IdentSlots).
	Oracle bool `json:"oracle"`
	// IdentSlots bounds the §4 identification-validation campaign; 0
	// uses min(Slots, 125).
	IdentSlots int `json:"ident_slots,omitempty"`
	// ResetEvery clears dish state every N slots (0 keeps 40).
	ResetEvery int `json:"reset_every,omitempty"`
	// Workers bounds the campaign worker pool (0 = all CPUs).
	Workers int `json:"workers,omitempty"`
	// SnapshotWorkers is the propagation-sweep fan-out (0 = all CPUs).
	SnapshotWorkers int `json:"snapshot_workers,omitempty"`
}

// OutputsSpec selects what the scenario run produces.
type OutputsSpec struct {
	// Observations, when set, saves the chosen-only observation
	// stream as JSONL to this path.
	Observations string `json:"observations,omitempty"`
	// Analyses selects pipeline stages: ident, aoe, azimuth, launch,
	// sunlit, model, recovery. Empty runs all of them ("recovery"
	// only when weights are planted).
	Analyses []string `json:"analyses,omitempty"`
}

// KnownAnalyses lists the valid Outputs.Analyses entries in run order.
var KnownAnalyses = []string{"ident", "aoe", "azimuth", "launch", "sunlit", "model", "recovery"}

// AnalysisEnabled reports whether the named stage should run: listed,
// or no list given (then "recovery" requires planted weights).
func (s *Spec) AnalysisEnabled(name string) bool {
	if len(s.Outputs.Analyses) == 0 {
		if name == "recovery" {
			return s.Scheduler.Weights != nil
		}
		return true
	}
	for _, a := range s.Outputs.Analyses {
		if a == name {
			return true
		}
	}
	return false
}

// Parse reads one spec from r. Decoding is strict — unknown or
// misspelled fields are errors, not silent no-ops — and the spec is
// validated before being returned.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a spec from a file.
func Load(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadPreset reads an embedded preset by name (without the .json
// suffix).
func LoadPreset(name string) (*Spec, error) {
	b, err := fs.ReadFile(scenarios.FS, name+".json")
	if err != nil {
		return nil, fmt.Errorf("scenario: no preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
	}
	s, err := Parse(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("preset %s: %w", name, err)
	}
	return s, nil
}

// Resolve loads arg as a file path, falling back to an embedded
// preset name (with or without the .json suffix) when no such file
// exists. This is what `repro -scenario` accepts.
func Resolve(arg string) (*Spec, error) {
	if _, err := os.Stat(arg); err == nil {
		return Load(arg)
	}
	return LoadPreset(strings.TrimSuffix(arg, ".json"))
}

// PresetNames lists the embedded presets, sorted.
func PresetNames() []string {
	entries, err := fs.ReadDir(scenarios.FS, ".")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// ValidateAll parses and validates every embedded preset, and checks
// each file is named after its spec. It backs the CI guarantee that
// no checked-in preset can rot.
func ValidateAll() error {
	names := PresetNames()
	if len(names) == 0 {
		return fmt.Errorf("scenario: no embedded presets")
	}
	var errs []string
	for _, n := range names {
		s, err := LoadPreset(n)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		if s.Name != n {
			errs = append(errs, fmt.Sprintf("preset file %s.json names itself %q", n, s.Name))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("scenario: %s", strings.Join(errs, "; "))
	}
	return nil
}

// constellationPresets maps preset names to shell designs.
func constellationPreset(name string) ([]constellation.Shell, bool) {
	switch name {
	case "starlink-small":
		sh, _ := experiments.ShellsFor(experiments.Small)
		return sh, true
	case "starlink-medium":
		sh, _ := experiments.ShellsFor(experiments.Medium)
		return sh, true
	case "starlink-full":
		return constellation.StarlinkShells(), true
	case "oneweb":
		return constellation.OneWebShells(), true
	case "iridium-next":
		return constellation.IridiumNextShells(), true
	case "kepler":
		return constellation.KeplerShells(), true
	}
	return nil, false
}

// ConstellationPresetNames lists the valid ConstellationSpec.Preset
// values.
func ConstellationPresetNames() []string {
	return []string{"starlink-small", "starlink-medium", "starlink-full", "oneweb", "iridium-next", "kepler"}
}

// Shells resolves the spec's constellation design.
func (s *Spec) Shells() ([]constellation.Shell, error) {
	c := &s.Constellation
	switch {
	case c.Preset != "" && len(c.Shells) > 0:
		return nil, fmt.Errorf("scenario: constellation sets both preset and shells")
	case c.Preset != "":
		sh, ok := constellationPreset(c.Preset)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown constellation preset %q (have %s)", c.Preset, strings.Join(ConstellationPresetNames(), ", "))
		}
		return sh, nil
	case len(c.Shells) > 0:
		out := make([]constellation.Shell, len(c.Shells))
		for i, sp := range c.Shells {
			out[i] = sp.shell()
		}
		return out, nil
	}
	return nil, fmt.Errorf("scenario: constellation needs a preset or explicit shells")
}

// epoch parses the optional constellation epoch.
func (s *Spec) epoch() (time.Time, error) {
	if s.Constellation.Epoch == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, s.Constellation.Epoch)
	if err != nil {
		return time.Time{}, fmt.Errorf("scenario: constellation epoch: %w", err)
	}
	return t.UTC(), nil
}

// VantagePoints lowers the terminal placement section, in
// deterministic order: preset sites, explicit sites, grids, random
// scatters.
func (s *Spec) VantagePoints() ([]geo.VantagePoint, error) {
	t := &s.Terminals
	var vps []geo.VantagePoint
	switch t.Preset {
	case "":
	case "study":
		vps = append(vps, geo.StudyVantagePoints()...)
	case "southern":
		vps = append(vps, geo.SouthernVantagePoints()...)
	default:
		return nil, fmt.Errorf("scenario: unknown terminals preset %q (want study or southern)", t.Preset)
	}
	for _, site := range t.Sites {
		off := geo.UTCOffsetForLon(site.LonDeg)
		if site.UTCOffsetHours != nil {
			off = *site.UTCOffsetHours
		}
		vp := geo.VantagePoint{
			Name:           site.Name,
			Location:       astro.Geodetic{LatDeg: site.LatDeg, LonDeg: site.LonDeg, AltKm: site.AltKm},
			UTCOffsetHours: off,
			PoP:            site.PoP,
		}
		if len(site.Mask) > 0 {
			sectors := make([]geo.MaskSector, len(site.Mask))
			for i, m := range site.Mask {
				sectors[i] = geo.MaskSector{AzFromDeg: m.AzFromDeg, AzToDeg: m.AzToDeg, MinElevDeg: m.MinElevDeg}
			}
			vp.Mask = geo.NewMask(sectors)
		}
		vps = append(vps, vp)
	}
	for _, g := range t.Grids {
		pts, err := geo.Grid(g.Prefix, g.Region.region(), g.Rows, g.Cols, g.AltKm)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		vps = append(vps, pts...)
	}
	for i, r := range t.Random {
		seed := s.Seed + int64(i+1) // decorrelate multiple scatters
		if r.Seed != nil {
			seed = *r.Seed
		}
		pts, err := geo.RandomInRegion(r.Prefix, r.Region.region(), r.Count, r.AltKm, seed)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		vps = append(vps, pts...)
	}
	if len(vps) == 0 {
		return nil, fmt.Errorf("scenario: no terminals placed (need a preset, sites, grids, or random)")
	}
	return vps, nil
}

// Validate checks the whole spec and reports every problem it can
// find, joined into one error — a spec author fixes one round of
// messages, not one message per round.
func (s *Spec) Validate() error {
	var errs []string
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	if s.Version != SpecVersion {
		bad("version %d unsupported (want %d)", s.Version, SpecVersion)
	}
	if s.Name == "" {
		bad("name is required")
	} else if strings.ContainsAny(s.Name, " \t\n") {
		bad("name %q contains whitespace", s.Name)
	}

	// Constellation.
	if _, err := s.Shells(); err != nil {
		errs = append(errs, strings.TrimPrefix(err.Error(), "scenario: "))
	}
	for _, sp := range s.Constellation.Shells {
		if err := sp.shell().Validate(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if _, err := s.epoch(); err != nil {
		errs = append(errs, strings.TrimPrefix(err.Error(), "scenario: "))
	}
	if s.Constellation.JitterDeg < 0 {
		bad("constellation jitter_deg %.3f negative", s.Constellation.JitterDeg)
	}

	// Terminals. Structural errors first, then name collisions over
	// whatever placement succeeds.
	switch s.Terminals.Preset {
	case "", "study", "southern":
	default:
		bad("unknown terminals preset %q (want study or southern)", s.Terminals.Preset)
	}
	for _, site := range s.Terminals.Sites {
		if site.Name == "" {
			bad("terminal site with empty name")
		}
		if site.LatDeg < -90 || site.LatDeg > 90 || site.LonDeg < -180 || site.LonDeg > 180 {
			bad("site %q at (%.2f, %.2f) outside lat/lon range", site.Name, site.LatDeg, site.LonDeg)
		}
		if site.PoP != "" {
			if _, ok := geo.PoPByName(site.PoP); !ok {
				bad("site %q references unknown pop %q", site.Name, site.PoP)
			}
		}
	}
	for _, g := range s.Terminals.Grids {
		if g.Prefix == "" {
			bad("grid with empty prefix")
		}
		if g.Rows <= 0 || g.Cols <= 0 {
			bad("grid %q has non-positive shape %dx%d", g.Prefix, g.Rows, g.Cols)
		}
		if err := g.Region.region().Validate(); err != nil {
			bad("grid %q: %v", g.Prefix, err)
		}
	}
	for _, r := range s.Terminals.Random {
		if r.Prefix == "" {
			bad("random scatter with empty prefix")
		}
		if r.Count <= 0 {
			bad("random %q has non-positive count %d", r.Prefix, r.Count)
		}
		if err := r.Region.region().Validate(); err != nil {
			bad("random %q: %v", r.Prefix, err)
		}
	}
	if vps, err := s.VantagePoints(); err == nil {
		seen := make(map[string]bool, len(vps))
		for _, vp := range vps {
			if seen[vp.Name] {
				bad("duplicate terminal name %q", vp.Name)
			}
			seen[vp.Name] = true
		}
	} else if len(s.Terminals.Sites)+len(s.Terminals.Grids)+len(s.Terminals.Random) == 0 && s.Terminals.Preset == "" {
		bad("no terminals placed (need a preset, sites, grids, or random)")
	}

	// Scheduler.
	sc := &s.Scheduler
	if sc.Weights != nil && *sc.Weights == (WeightsSpec{}) {
		bad("scheduler weights are all zero (the scheduler would substitute defaults; omit the field instead)")
	}
	if sc.MinElevationDeg < 0 || sc.MinElevationDeg >= 90 {
		bad("scheduler min_elevation_deg %.1f outside [0, 90)", sc.MinElevationDeg)
	}
	if sc.GSOProtectionDeg < 0 {
		bad("scheduler gso_protection_deg %.1f negative (use disable_gso)", sc.GSOProtectionDeg)
	}
	if sc.DisableGSO && sc.GSOProtectionDeg != 0 {
		bad("scheduler sets both disable_gso and gso_protection_deg")
	}
	if sc.DisableGroundStations && len(sc.GroundStations) > 0 {
		bad("scheduler sets both disable_ground_stations and ground_stations")
	}
	if sc.GSMinElevationDeg < 0 || sc.GSMinElevationDeg >= 90 {
		bad("scheduler gs_min_elevation_deg %.1f outside [0, 90)", sc.GSMinElevationDeg)
	}

	// Campaign.
	if s.Campaign.Slots <= 0 {
		bad("campaign slots %d must be positive", s.Campaign.Slots)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"ident_slots", s.Campaign.IdentSlots},
		{"reset_every", s.Campaign.ResetEvery},
		{"workers", s.Campaign.Workers},
		{"snapshot_workers", s.Campaign.SnapshotWorkers},
	} {
		if f.v < 0 {
			bad("campaign %s %d negative", f.name, f.v)
		}
	}

	// Outputs.
	seenA := make(map[string]bool)
	for _, a := range s.Outputs.Analyses {
		known := false
		for _, k := range KnownAnalyses {
			if a == k {
				known = true
			}
		}
		if !known {
			bad("unknown analysis %q (want %s)", a, strings.Join(KnownAnalyses, ", "))
		}
		if seenA[a] {
			bad("duplicate analysis %q", a)
		}
		seenA[a] = true
	}
	if s.AnalysisEnabled("recovery") && s.Scheduler.Weights == nil {
		bad("analysis \"recovery\" needs planted scheduler weights")
	}

	if len(errs) == 0 {
		return nil
	}
	name := s.Name
	if name == "" {
		name = "(unnamed)"
	}
	return fmt.Errorf("scenario %s: %d problem(s): %s", name, len(errs), strings.Join(errs, "; "))
}
