package capture

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pcap"
)

func trace() []netsim.Sample {
	base := time.Date(2023, 3, 1, 1, 0, 12, 0, time.UTC)
	return []netsim.Sample{
		{T: base, RTTms: 30.5, SatID: 1},
		{T: base.Add(20 * time.Millisecond), RTTms: 31.25, SatID: 1},
		{T: base.Add(40 * time.Millisecond), Lost: true},
		{T: base.Add(60 * time.Millisecond), RTTms: 28.0, SatID: 2},
	}
}

func TestExportFrameCount(t *testing.T) {
	var buf bytes.Buffer
	n, err := Export(&buf, trace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 requests + 3 replies (one probe lost).
	if n != 7 {
		t.Fatalf("wrote %d frames, want 7", n)
	}
}

func TestExportRecoversRTTs(t *testing.T) {
	samples := trace()
	var buf bytes.Buffer
	if _, err := Export(&buf, samples, Config{}); err != nil {
		t.Fatal(err)
	}
	rtts, err := RTTsFromCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtts) != 3 {
		t.Fatalf("recovered %d rtts, want 3", len(rtts))
	}
	for i, s := range samples {
		if s.Lost {
			if _, ok := rtts[uint64(i)]; ok {
				t.Errorf("lost probe %d has an RTT", i)
			}
			continue
		}
		got := float64(rtts[uint64(i)]) / float64(time.Millisecond)
		// pcap timestamps are microsecond-granular.
		if math.Abs(got-s.RTTms) > 0.01 {
			t.Errorf("probe %d: rtt %v ms, want %v", i, got, s.RTTms)
		}
	}
}

func TestExportTimestampOrder(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Export(&buf, trace(), Config{}); err != nil {
		t.Fatal(err)
	}
	// Re-read at the pcap layer and require monotone non-decreasing
	// timestamps even though replies interleave with later requests.
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 7 {
		t.Fatalf("%d packets", len(pkts))
	}
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Timestamp.Before(pkts[i-1].Timestamp) {
			t.Fatalf("timestamps out of order at %d: %v < %v", i, pkts[i].Timestamp, pkts[i-1].Timestamp)
		}
	}
}

func TestExportEmpty(t *testing.T) {
	var buf bytes.Buffer
	n, err := Export(&buf, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("wrote %d frames for empty trace", n)
	}
	// Still a valid capture file.
	rtts, err := RTTsFromCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtts) != 0 {
		t.Error("rtts from empty capture")
	}
}

func TestRTTsFromGarbage(t *testing.T) {
	if _, err := RTTsFromCapture(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
}
