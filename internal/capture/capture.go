// Package capture exports a simulated measurement trace as a packet
// capture: each probe becomes an Ethernet/IPv4/UDP request frame at
// its send time and (unless lost) a reply frame one RTT later, so a
// netsim trace opens directly in Wireshark/tcpdump for the same
// inter-packet analysis the paper ran on live traffic.
package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pcap"
)

// Config names the synthetic endpoints.
type Config struct {
	TerminalIP packet.IP4 // default 100.64.0.10 (CGNAT, like real dishes)
	ServerIP   packet.IP4 // default 100.64.0.1 (the PoP server)
	SrcPort    uint16     // default 40000
	DstPort    uint16     // default 9300
}

func (c *Config) applyDefaults() {
	if c.TerminalIP == (packet.IP4{}) {
		c.TerminalIP = packet.IP4{100, 64, 0, 10}
	}
	if c.ServerIP == (packet.IP4{}) {
		c.ServerIP = packet.IP4{100, 64, 0, 1}
	}
	if c.SrcPort == 0 {
		c.SrcPort = 40000
	}
	if c.DstPort == 0 {
		c.DstPort = 9300
	}
}

var (
	terminalMAC = packet.MAC{0x02, 0x5a, 0x11, 0x00, 0x00, 0x01}
	routerMAC   = packet.MAC{0x02, 0x5a, 0x11, 0x00, 0x00, 0xFE}
)

// payloadLen mirrors the irtt probe size.
const payloadLen = 33

// Export writes the trace as a pcap stream. Reply frames interleave
// with later requests in correct timestamp order. Returns the number
// of frames written.
func Export(w io.Writer, samples []netsim.Sample, cfg Config) (int, error) {
	cfg.applyDefaults()

	type frame struct {
		ts   time.Time
		data []byte
	}
	frames := make([]frame, 0, len(samples)*2)
	for i, s := range samples {
		payload := make([]byte, payloadLen)
		copy(payload, "IRTT")
		payload[4] = 1
		binary.BigEndian.PutUint64(payload[5:13], uint64(i))
		req, err := packet.BuildUDPFrame(terminalMAC, routerMAC,
			cfg.TerminalIP, cfg.ServerIP, cfg.SrcPort, cfg.DstPort, uint16(i), payload)
		if err != nil {
			return 0, fmt.Errorf("capture: probe %d: %w", i, err)
		}
		frames = append(frames, frame{ts: s.T, data: req})
		if s.Lost {
			continue
		}
		reply := make([]byte, payloadLen)
		copy(reply, "IRTT")
		reply[4] = 2
		binary.BigEndian.PutUint64(reply[5:13], uint64(i))
		rep, err := packet.BuildUDPFrame(routerMAC, terminalMAC,
			cfg.ServerIP, cfg.TerminalIP, cfg.DstPort, cfg.SrcPort, uint16(i), reply)
		if err != nil {
			return 0, fmt.Errorf("capture: reply %d: %w", i, err)
		}
		frames = append(frames, frame{
			ts:   s.T.Add(time.Duration(s.RTTms * float64(time.Millisecond))),
			data: rep,
		})
	}
	sort.SliceStable(frames, func(i, j int) bool { return frames[i].ts.Before(frames[j].ts) })

	pw := pcap.NewWriter(w, pcap.LinkTypeEthernet)
	for _, f := range frames {
		if err := pw.WritePacket(f.ts, f.data); err != nil {
			return 0, err
		}
	}
	if err := pw.Flush(); err != nil {
		return 0, err
	}
	return len(frames), nil
}

// RTTsFromCapture recovers per-probe RTTs from an exported capture by
// matching request/reply sequence numbers — the inverse of Export,
// and a check that the capture carries the same measurement content
// as the trace it came from.
func RTTsFromCapture(r io.Reader) (map[uint64]time.Duration, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	sent := map[uint64]time.Time{}
	rtts := map[uint64]time.Duration{}
	for {
		pkt, err := pr.Next()
		if err == io.EOF {
			return rtts, nil
		}
		if err != nil {
			return nil, err
		}
		_, _, _, payload, err := packet.ParseUDPFrame(pkt.Data)
		if err != nil || len(payload) < 13 || string(payload[:4]) != "IRTT" {
			continue
		}
		seq := binary.BigEndian.Uint64(payload[5:13])
		switch payload[4] {
		case 1:
			sent[seq] = pkt.Timestamp
		case 2:
			if t0, ok := sent[seq]; ok {
				rtts[seq] = pkt.Timestamp.Sub(t0)
			}
		}
	}
}
