package predict

import "repro/internal/telemetry"

// metrics is the service's telemetry surface. Everything is nil-safe:
// with no registry the handles are nil and every update is a no-op, so
// the serve path never branches on "telemetry enabled".
type metrics struct {
	requests    *telemetry.Counter   // RPC calls handled
	observed    *telemetry.Counter   // records folded in (incl. unusable)
	scored      *telemetry.Counter   // records predicted and ranked
	refits      *telemetry.Counter   // models trained and published
	refitErrors *telemetry.Counter   // background refits that failed
	driftEvents *telemetry.Counter   // drift rising edges
	driftActive *telemetry.Gauge     // 1 while the drift flag is raised
	modelVersion *telemetry.Gauge    // serving model's publication number
	windowRows  *telemetry.Gauge     // rows in the last refit's window
	recentTop1  *telemetry.FloatGauge
	recentTopK  *telemetry.FloatGauge
	refTop1     *telemetry.FloatGauge
	serve       *telemetry.Histogram // RPC predict/topk latency, seconds
}

func newMetrics(r *telemetry.Registry) *metrics {
	return &metrics{
		requests:     r.Counter("predict_requests_total", "RPC requests handled by predictd"),
		observed:     r.Counter("predict_observed_total", "slot records folded into the online model"),
		scored:       r.Counter("predict_scored_total", "slot records predicted and scored against the reveal"),
		refits:       r.Counter("predict_refits_total", "sliding-window refits published"),
		refitErrors:  r.Counter("predict_refit_errors_total", "background refits that failed"),
		driftEvents:  r.Counter("predict_drift_events_total", "drift-flag rising edges"),
		driftActive:  r.Gauge("predict_drift_active", "1 while windowed accuracy is degraded"),
		modelVersion: r.Gauge("predict_model_version", "publication number of the serving model"),
		windowRows:   r.Gauge("predict_window_rows", "rows in the most recent refit window"),
		recentTop1:   r.FloatGauge("predict_recent_top1", "short-window top-1 accuracy"),
		recentTopK:   r.FloatGauge("predict_recent_topk", "short-window top-k accuracy"),
		refTop1:      r.FloatGauge("predict_ref_top1", "reference-window top-1 accuracy"),
		serve:        r.Histogram("predict_serve_seconds", "predict/topk serve latency", nil),
	}
}
