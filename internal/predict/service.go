// Package predict is the online-inference subsystem: a campaign
// stream feeds a warm forest that ranks each slot's clusters before
// the scheduler's choice is revealed, scores itself on the reveal,
// refits incrementally on a sliding window of recent slots, and swaps
// each new model in atomically so serving never stalls. A windowed
// drift detector compares short-horizon accuracy against a longer
// reference and raises a flag (plus a forced refit) when the scheduler
// the model learned stops being the scheduler that's running — the
// online counterpart of the paper's observation that its §6 model is
// specific to the scheduling policy it was trained against.
package predict

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// Config sizes the service. Zero values take the defaults noted on
// each field.
type Config struct {
	// Window is the sliding-window capacity in usable slots
	// (default 2048).
	Window int
	// RefitEvery triggers a refit after this many scored slots
	// (default 256). Drift rising edges force a refit regardless.
	RefitEvery int
	// MinFit is the minimum window fill before the first fit
	// (default RefitEvery).
	MinFit int
	// Trees and MaxDepth shape each refit's forest (defaults 30, 10 —
	// the quick-model operating point).
	Trees    int
	MaxDepth int
	// Workers bounds each refit's training pool (0 = GOMAXPROCS).
	// Forests are bit-identical at any value.
	Workers int
	// Seed is the base training seed; refit i uses Seed+i.
	Seed int64
	// TopK is the hit horizon for the windowed top-k accuracy
	// (default 5, the paper's headline k).
	TopK int
	// AccWindow and RefWindow are the drift detector's short and long
	// accuracy horizons in scored slots (defaults 64, 256).
	AccWindow int
	RefWindow int
	// DriftDrop is the accuracy gap (reference minus recent) that
	// raises the drift flag (default 0.15). The flag clears with
	// hysteresis at half the gap.
	DriftDrop float64
	// Synchronous runs refits inline on the observing goroutine instead
	// of in the background. Serving stalls are back on the table, but
	// the scored stream becomes a pure function of the input stream —
	// what the determinism tests and offline experiments want.
	Synchronous bool
	// Registry receives serving telemetry; nil disables it.
	Registry *telemetry.Registry
}

func (c *Config) applyDefaults() {
	if c.Window == 0 {
		c.Window = 2048
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = 256
	}
	if c.MinFit == 0 {
		c.MinFit = c.RefitEvery
	}
	if c.Trees == 0 {
		c.Trees = 30
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.TopK == 0 {
		c.TopK = 5
	}
	if c.AccWindow == 0 {
		c.AccWindow = 64
	}
	if c.RefWindow == 0 {
		c.RefWindow = 256
	}
	if c.DriftDrop == 0 {
		c.DriftDrop = 0.15
	}
}

// hitRing is a fixed-capacity ring of hit/miss outcomes with a running
// hit count — the windowed-accuracy primitive behind the drift
// detector.
type hitRing struct {
	buf  []bool
	head int
	n    int
	hits int
}

func newHitRing(capacity int) *hitRing { return &hitRing{buf: make([]bool, capacity)} }

func (r *hitRing) push(hit bool) {
	if r.n == len(r.buf) {
		if r.buf[r.head] {
			r.hits--
		}
	} else {
		r.n++
	}
	r.buf[r.head] = hit
	if hit {
		r.hits++
	}
	r.head = (r.head + 1) % len(r.buf)
}

func (r *hitRing) full() bool { return r.n == len(r.buf) }

func (r *hitRing) acc() float64 {
	if r.n == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.n)
}

// Service is the online scorer/server. Serving reads the model
// wait-free through an atomic swap; the learning state (window, rings,
// refit cadence) sits behind one mutex. It implements
// pipeline.OnlineScorer.
type Service struct {
	cfg Config
	m   *metrics

	swap ml.SwapForest

	mu        sync.Mutex
	trainer   *ml.WindowTrainer
	recent1   *hitRing // top-1, short horizon
	recentK   *hitRing // top-K, short horizon
	ref1      *hitRing // top-1, long horizon
	drift     bool
	driftEvts int
	observed  int64 // records seen (incl. unusable)
	scored    int64 // records predicted and ranked
	sinceFit  int   // scored slots since the last refit trigger
	refitting bool  // single-flight guard for async refits

	pool sync.Pool // *Scratch
}

// NewService validates the config and returns an idle service (no
// model yet; records observed before the first fit are absorbed into
// the window but not scored).
func NewService(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	if cfg.TopK < 1 || cfg.TopK > features.NumClusters {
		return nil, fmt.Errorf("predict: top-k %d out of range 1..%d", cfg.TopK, features.NumClusters)
	}
	if cfg.DriftDrop < 0 || cfg.DriftDrop > 1 {
		return nil, fmt.Errorf("predict: drift drop %v out of range 0..1", cfg.DriftDrop)
	}
	if cfg.MinFit < 2 {
		return nil, fmt.Errorf("predict: min fit %d, need >= 2", cfg.MinFit)
	}
	tr, err := ml.NewWindowTrainer(ml.WindowConfig{
		Capacity:   cfg.Window,
		NumClasses: features.NumClusters,
		Forest: ml.ForestConfig{
			NumTrees: cfg.Trees,
			Tree:     ml.TreeConfig{MaxDepth: cfg.MaxDepth},
			Seed:     cfg.Seed,
			Workers:  cfg.Workers,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		m:       newMetrics(cfg.Registry),
		trainer: tr,
		recent1: newHitRing(cfg.AccWindow),
		recentK: newHitRing(cfg.AccWindow),
		ref1:    newHitRing(cfg.RefWindow),
	}
	s.pool.New = func() any { return NewScratch() }
	return s, nil
}

// SetModel installs a pre-trained forest (e.g. loaded from disk by
// predictd) as the serving model. The forest must match the §6 schema;
// load it with ml.LoadForestFor(r, features.VectorLen,
// features.NumClusters) to enforce that at the boundary.
func (s *Service) SetModel(f *ml.Forest) error {
	if f.NumFeatures() != features.VectorLen || f.NumClasses() != features.NumClusters {
		return fmt.Errorf("%w: forest is %dx%d, serving schema is %dx%d",
			ml.ErrModelShape, f.NumFeatures(), f.NumClasses(), features.VectorLen, features.NumClusters)
	}
	v := s.swap.Store(f)
	s.m.modelVersion.Set(v)
	return nil
}

// Model returns the serving forest (nil before the first fit or
// SetModel) and its version.
func (s *Service) Model() (*ml.Forest, int64) { return s.swap.Load(), s.swap.Version() }

// Scratch holds the serve path's reusable buffers. One Scratch serves
// one call at a time; the service keeps an internal pool for the RPC
// handlers, and hot in-process callers hold their own.
type Scratch struct {
	sats  []features.Sat
	slot  features.Slot
	vec   []float64
	probs []float64
	idx   []int
}

// NewScratch returns serve scratch sized for the §6 schema.
func NewScratch() *Scratch {
	return &Scratch{
		vec:   make([]float64, features.VectorLen),
		probs: make([]float64, features.NumClusters),
		idx:   make([]int, features.NumClusters),
	}
}

// Ranked exposes the cluster ranking filled by the last Rank call,
// best first. The slice aliases the scratch — copy before the next
// call if it must survive.
func (sc *Scratch) Ranked() []int { return sc.idx }

// Probs exposes the probability for each cluster index (not ranking
// order) from the last Rank call.
func (sc *Scratch) Probs() []float64 { return sc.probs }

// ErrNoModel is returned by Rank before any model has been fit or
// installed.
var ErrNoModel = fmt.Errorf("predict: no model fit yet")

// Rank clusters the available set, renders the feature vector, and
// ranks all clusters with the serving model, entirely in sc's buffers
// — zero allocations once sc is warm. Returns the serving model's
// version. Safe to call concurrently (distinct sc per caller); never
// blocks on refits.
func (s *Service) Rank(localHour int, sats []features.Sat, sc *Scratch) (int64, error) {
	f := s.swap.Load()
	if f == nil {
		return 0, ErrNoModel
	}
	if err := features.ClusterInto(&sc.slot, sats); err != nil {
		return 0, err
	}
	if err := sc.slot.VectorInto(localHour, sc.vec); err != nil {
		return 0, err
	}
	if err := (ml.ForestRanker{Forest: f}).RankClassesInto(sc.vec, sc.probs, sc.idx); err != nil {
		return 0, err
	}
	return s.swap.Version(), nil
}

// ObserveRecord folds one revealed slot into the service: rank ahead
// of the reveal (when a model is serving), score the ranking against
// the scheduler's actual choice, slide the window, and refit on
// cadence or drift. Implements pipeline.OnlineScorer.
func (s *Service) ObserveRecord(rec *pipeline.Record) (pipeline.ScoreUpdate, error) {
	s.m.observed.Add(1)
	obs := &rec.Observation
	if _, ok := obs.Chosen(); !ok {
		s.mu.Lock()
		s.observed++
		up := s.snapshotLocked(pipeline.ScoreUpdate{})
		s.mu.Unlock()
		return up, nil
	}

	sc := s.pool.Get().(*Scratch)
	defer s.pool.Put(sc)
	sc.sats = sc.sats[:0]
	for _, a := range obs.Available {
		sc.sats = append(sc.sats, features.Sat{
			AzimuthDeg:   a.AzimuthDeg,
			ElevationDeg: a.ElevationDeg,
			AgeYears:     a.AgeYears,
			Sunlit:       a.Sunlit,
		})
	}
	if err := features.ClusterInto(&sc.slot, sc.sats); err != nil {
		return pipeline.ScoreUpdate{}, fmt.Errorf("predict: slot %v at %s: %w", obs.SlotStart, obs.Terminal, err)
	}
	key, err := sc.slot.KeyOf(obs.ChosenIdx)
	if err != nil {
		return pipeline.ScoreUpdate{}, fmt.Errorf("predict: slot %v at %s: %w", obs.SlotStart, obs.Terminal, err)
	}
	label := key.Index()
	if err := sc.slot.VectorInto(obs.LocalHour, sc.vec); err != nil {
		return pipeline.ScoreUpdate{}, err
	}

	// Predict before learning: the model must not see the answer first.
	rank := 0
	f := s.swap.Load()
	if f != nil {
		if err := (ml.ForestRanker{Forest: f}).RankClassesInto(sc.vec, sc.probs, sc.idx); err != nil {
			return pipeline.ScoreUpdate{}, err
		}
		for i, c := range sc.idx {
			if c == label {
				rank = i + 1
				break
			}
		}
	}

	var fit *ml.WindowFit
	s.mu.Lock()
	s.observed++
	up := pipeline.ScoreUpdate{}
	if f != nil {
		s.scored++
		s.sinceFit++
		up.Scored = true
		up.Rank = rank
		s.recent1.push(rank == 1)
		s.recentK.push(rank >= 1 && rank <= s.cfg.TopK)
		s.ref1.push(rank == 1)
		s.updateDriftLocked()
	}
	s.trainer.Add(sc.vec, label)
	fit = s.maybePlanRefitLocked()
	up = s.snapshotLocked(up)
	s.mu.Unlock()

	if f != nil {
		s.m.scored.Add(1)
		s.publishAccuracy(up)
	}

	if fit != nil {
		if s.cfg.Synchronous {
			if err := s.runRefit(fit); err != nil {
				return up, err
			}
			// Reflect the just-published model in the update.
			up.ModelVersion = s.swap.Version()
		} else {
			go func() {
				if err := s.runRefit(fit); err != nil {
					s.m.refitErrors.Add(1)
				}
			}()
		}
	}
	return up, nil
}

// updateDriftLocked re-evaluates the drift flag from the rings and
// counts rising edges. Drift fires only once both horizons are full —
// a half-warm reference window would compare incommensurate regimes.
func (s *Service) updateDriftLocked() {
	if !s.recent1.full() || !s.ref1.full() {
		return
	}
	gap := s.ref1.acc() - s.recent1.acc()
	if !s.drift && gap > s.cfg.DriftDrop {
		s.drift = true
		s.driftEvts++
		s.m.driftEvents.Add(1)
		s.m.driftActive.Set(1)
		// Force a refit on the next cadence check.
		s.sinceFit = s.cfg.RefitEvery
	} else if s.drift && gap <= s.cfg.DriftDrop/2 {
		s.drift = false
		s.m.driftActive.Set(0)
	}
}

// maybePlanRefitLocked claims a refit snapshot when the cadence (or a
// drift edge) says so and no fit is already in flight.
func (s *Service) maybePlanRefitLocked() *ml.WindowFit {
	if s.refitting {
		return nil
	}
	if s.trainer.Len() < s.cfg.MinFit {
		return nil
	}
	first := s.swap.Load() == nil
	if !first && s.sinceFit < s.cfg.RefitEvery {
		return nil
	}
	s.refitting = true
	s.sinceFit = 0
	return s.trainer.Plan()
}

// runRefit trains a claimed snapshot and swaps the result in. The
// train runs outside the service lock; the swap is atomic, so serving
// never sees a half-built model and never stalls.
func (s *Service) runRefit(fit *ml.WindowFit) error {
	f, err := fit.Fit(context.Background(), s.cfg.Workers)

	s.mu.Lock()
	s.refitting = false
	s.mu.Unlock()

	if err != nil {
		return fmt.Errorf("predict: refit %d: %w", fit.Index(), err)
	}
	v := s.swap.Store(f)
	s.m.refits.Add(1)
	s.m.modelVersion.Set(v)
	s.m.windowRows.Set(int64(fit.Rows()))
	return nil
}

// snapshotLocked fills the windowed-health fields of an update.
func (s *Service) snapshotLocked(up pipeline.ScoreUpdate) pipeline.ScoreUpdate {
	up.RecentTop1 = s.recent1.acc()
	up.RecentTopK = s.recentK.acc()
	up.RefTop1 = s.ref1.acc()
	up.Drift = s.drift
	up.DriftEvents = s.driftEvts
	up.Refits = s.trainer.Fits()
	up.ModelVersion = s.swap.Version()
	return up
}

func (s *Service) publishAccuracy(up pipeline.ScoreUpdate) {
	s.m.recentTop1.Set(up.RecentTop1)
	s.m.recentTopK.Set(up.RecentTopK)
	s.m.refTop1.Set(up.RefTop1)
}

// Stats is a point-in-time summary of the service, served over RPC and
// used by the drift experiment's report.
type Stats struct {
	Observed     int64   `json:"observed"`
	Scored       int64   `json:"scored"`
	RecentTop1   float64 `json:"recent_top1"`
	RecentTopK   float64 `json:"recent_topk"`
	RefTop1      float64 `json:"ref_top1"`
	Drift        bool    `json:"drift"`
	DriftEvents  int     `json:"drift_events"`
	Refits       int     `json:"refits"`
	ModelVersion int64   `json:"model_version"`
	WindowRows   int     `json:"window_rows"`
}

// Stats snapshots the service's counters and windowed accuracies.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Observed:     s.observed,
		Scored:       s.scored,
		RecentTop1:   s.recent1.acc(),
		RecentTopK:   s.recentK.acc(),
		RefTop1:      s.ref1.acc(),
		Drift:        s.drift,
		DriftEvents:  s.driftEvts,
		Refits:       s.trainer.Fits(),
		ModelVersion: s.swap.Version(),
		WindowRows:   s.trainer.Len(),
	}
}
