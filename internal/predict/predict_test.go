package predict

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dishrpc"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// regimeStream fabricates a learnable campaign: every slot sees nSats
// satellites that differ only in elevation, so the cluster space
// collapses to the ElZ axis and a small forest learns the selection
// rule quickly. Regime "high" picks the max-elevation satellite (the
// default scheduler's bias); "low" picks the minimum — the adversarial
// weight flip in miniature.
func regimeStream(rng *rand.Rand, n, nSats int, high bool) []pipeline.Record {
	base := time.Date(2023, 3, 1, 0, 0, 12, 0, time.UTC)
	out := make([]pipeline.Record, n)
	for i := range out {
		avail := make([]core.SatObs, nSats)
		best := 0
		for j := range avail {
			el := 40 + rng.NormFloat64()*10
			avail[j] = core.SatObs{ID: j + 1, ElevationDeg: el, AzimuthDeg: 180, AgeYears: 2}
			if high && el > avail[best].ElevationDeg {
				best = j
			}
			if !high && el < avail[best].ElevationDeg {
				best = j
			}
		}
		out[i] = pipeline.Record{Observation: core.Observation{
			Terminal:  "T",
			SlotStart: base.Add(time.Duration(i) * 15 * time.Second),
			LocalHour: (i / 4) % 24,
			Available: avail,
			ChosenIdx: best,
		}}
	}
	return out
}

func feed(t *testing.T, s *Service, recs []pipeline.Record) []pipeline.ScoreUpdate {
	t.Helper()
	ups := make([]pipeline.ScoreUpdate, len(recs))
	for i := range recs {
		up, err := s.ObserveRecord(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		ups[i] = up
	}
	return ups
}

// TestServiceRetrainDeterministic is the service-level half of the
// determinism contract: two services fed the same stream publish
// bit-identical models at every refit, whether training runs serial or
// on four workers.
func TestServiceRetrainDeterministic(t *testing.T) {
	recs := regimeStream(rand.New(rand.NewSource(7)), 200, 12, true)
	run := func(workers int) (string, Stats) {
		t.Helper()
		s, err := NewService(Config{
			Window: 128, RefitEvery: 50, MinFit: 50,
			Trees: 10, MaxDepth: 5, Seed: 3, Workers: workers,
			Synchronous: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		feed(t, s, recs)
		f, _ := s.Model()
		if f == nil {
			t.Fatal("no model after 200 slots")
		}
		fp, err := ml.Fingerprint(f)
		if err != nil {
			t.Fatal(err)
		}
		return fp, s.Stats()
	}
	fp1, st1 := run(1)
	fp4, st4 := run(4)
	if fp1 != fp4 {
		t.Errorf("workers=1 fingerprint %s != workers=4 %s", fp1, fp4)
	}
	if st1 != st4 {
		t.Errorf("stats diverged:\n  workers=1: %+v\n  workers=4: %+v", st1, st4)
	}
	if st1.Refits < 2 {
		t.Errorf("expected >= 2 refits over 200 slots, got %d", st1.Refits)
	}
	if st1.ModelVersion != int64(st1.Refits) {
		t.Errorf("model version %d != refits %d with synchronous fits", st1.ModelVersion, st1.Refits)
	}
}

// TestDriftDetection walks the adversarial arc: learn regime A, flip
// the selection rule, watch recent accuracy collapse and the drift
// flag rise, then confirm the forced refit re-learns regime B and the
// flag clears.
func TestDriftDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reg := telemetry.NewRegistry()
	s, err := NewService(Config{
		Window: 256, RefitEvery: 64, MinFit: 64,
		Trees: 10, MaxDepth: 6, Seed: 5, Workers: 2,
		TopK: 5, AccWindow: 32, RefWindow: 128, DriftDrop: 0.2,
		Synchronous: true, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	pre := feed(t, s, regimeStream(rng, 400, 12, true))
	last := pre[len(pre)-1]
	if last.RecentTop1 < 0.5 {
		t.Fatalf("stationary recent top-1 = %v, model never learned regime A", last.RecentTop1)
	}
	if last.Drift || last.DriftEvents != 0 {
		t.Fatalf("drift flagged during stationary phase: %+v", last)
	}

	post := feed(t, s, regimeStream(rng, 600, 12, false))
	detectedAt := -1
	clearedAt := -1
	for i, up := range post {
		if detectedAt < 0 && up.DriftEvents > 0 {
			detectedAt = i
		}
		if detectedAt >= 0 && clearedAt < 0 && !up.Drift {
			clearedAt = i
		}
	}
	if detectedAt < 0 {
		t.Fatal("drift never detected after the weight flip")
	}
	// Detection latency is bounded by the short horizon plus the gap
	// threshold: well under one reference window.
	if detectedAt > 128 {
		t.Errorf("drift detected %d slots after flip, want <= RefWindow (128)", detectedAt)
	}
	if clearedAt < 0 {
		t.Error("drift flag never cleared after retraining on the new regime")
	}
	final := post[len(post)-1]
	if final.RecentTop1 < 0.5 {
		t.Errorf("post-retrain recent top-1 = %v, model never recovered", final.RecentTop1)
	}
	if final.Drift {
		t.Errorf("drift still flagged at stream end: %+v", final)
	}

	snap := reg.Snapshot()
	if snap.Counter("predict_drift_events_total") < 1 {
		t.Error("predict_drift_events_total not incremented")
	}
	if snap.Counter("predict_refits_total") < 2 {
		t.Errorf("predict_refits_total = %d, want >= 2", snap.Counter("predict_refits_total"))
	}
	if snap.Counter("predict_scored_total") == 0 {
		t.Error("predict_scored_total stayed zero")
	}
}

// TestAtomicSwapUnderLoad hammers the serve path from readers while
// background refits publish new models — under -race this is the
// "never serve a half-written model" guarantee.
func TestAtomicSwapUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := NewService(Config{
		Window: 128, RefitEvery: 32, MinFit: 32,
		Trees: 5, MaxDepth: 4, Seed: 1, Workers: 2,
		Synchronous: false, // background refits
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := regimeStream(rng, 300, 10, true)
	sats := make([]core.SatObs, 10)
	copy(sats, recs[0].Available)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sc := NewScratch()
			q := rand.New(rand.NewSource(seed))
			query := regimeStream(q, 1, 10, true)[0]
			for {
				select {
				case <-stop:
					return
				default:
				}
				sc.sats = sc.sats[:0]
				for _, a := range query.Available {
					sc.sats = append(sc.sats, satFromObs(a))
				}
				if _, err := s.Rank(query.LocalHour, sc.sats, sc); err != nil && !errors.Is(err, ErrNoModel) {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	feed(t, s, recs)
	close(stop)
	wg.Wait()
	// Wait out any refit still in flight so -race sees its writes too.
	deadline := time.After(30 * time.Second)
	for {
		s.mu.Lock()
		busy := s.refitting
		s.mu.Unlock()
		if !busy {
			break
		}
		select {
		case <-deadline:
			t.Fatal("refit still in flight after 30s")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if f, v := s.Model(); f == nil || v == 0 {
		t.Error("no model published despite refits")
	}
}

// TestRPCRoundTrip runs the full wire path: server, typed client,
// every method, plus the typed unknown-method error.
func TestRPCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	reg := telemetry.NewRegistry()
	s, err := NewService(Config{
		Window: 128, RefitEvery: 40, MinFit: 40,
		Trees: 8, MaxDepth: 5, Seed: 2, Workers: 2,
		Synchronous: true, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, regimeStream(rng, 80, 10, true)) // past MinFit: model serving

	srv, err := NewServer("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	defer func() { cancel(); <-done }()

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sats := make([]SatParam, 10)
	for i := range sats {
		sats[i] = SatParam{AzimuthDeg: 180, ElevationDeg: 40 + float64(i), AgeYears: 2}
	}
	pr, err := c.Predict(12, sats)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Clusters) != 1 || pr.ModelVersion == 0 {
		t.Fatalf("predict = %+v, want one cluster from a served model", pr)
	}
	tk, err := c.TopK(12, sats, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tk.Clusters) != 5 || tk.Clusters[0] != pr.Clusters[0] {
		t.Fatalf("topk = %+v, want 5 clusters led by the predict answer", tk)
	}
	ob, err := c.Observe(ObserveRequest{LocalHour: 12, Sats: sats, ChosenIdx: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !ob.Scored || ob.Rank < 1 {
		t.Fatalf("observe = %+v, want a scored rank", ob)
	}
	info, err := c.ModelInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.NumTrees != 8 || info.ModelVersion == 0 {
		t.Fatalf("model_info = %+v", info)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scored == 0 || st.Refits == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Protocol skew surfaces as the typed error, not a dead transport.
	var out struct{}
	err = c.c.Call("nope", nil, &out)
	if !errors.Is(err, dishrpc.ErrUnknownMethod) {
		t.Fatalf("unknown method error = %v, want ErrUnknownMethod", err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("connection unusable after unknown method: %v", err)
	}

	if reg.Snapshot().Counter("predict_requests_total") == 0 {
		t.Error("predict_requests_total not incremented")
	}

	// Bad requests are rejected server-side without killing the link.
	if _, err := c.Predict(99, sats); err == nil {
		t.Error("out-of-range local hour accepted")
	}
	if _, err := c.Predict(12, nil); err == nil {
		t.Error("empty available set accepted")
	}
}

func satFromObs(a core.SatObs) features.Sat {
	return features.Sat{
		AzimuthDeg:   a.AzimuthDeg,
		ElevationDeg: a.ElevationDeg,
		AgeYears:     a.AgeYears,
		Sunlit:       a.Sunlit,
	}
}
