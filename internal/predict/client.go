package predict

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dishrpc"
	"repro/internal/pipeline"
)

// Client is a typed dishrpc client for predictd. Like the transport it
// wraps, it is not safe for concurrent use; the pipeline feeds it
// serially.
type Client struct {
	c *dishrpc.Client
}

// Dial connects to a predictd endpoint.
func Dial(addr string) (*Client, error) {
	c, err := dishrpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	return &Client{c: c}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.c.Close() }

// Predict returns the model's best cluster for the slot.
func (c *Client) Predict(localHour int, sats []SatParam) (PredictResult, error) {
	var res PredictResult
	err := c.c.Call("predict", PredictRequest{LocalHour: localHour, Sats: sats}, &res)
	return res, err
}

// TopK returns the top-k head of the ranking (k=0 uses the server's
// configured horizon).
func (c *Client) TopK(localHour int, sats []SatParam, k int) (PredictResult, error) {
	var res PredictResult
	err := c.c.Call("topk", PredictRequest{LocalHour: localHour, Sats: sats, K: k}, &res)
	return res, err
}

// Observe folds one revealed slot into the remote model.
func (c *Client) Observe(req ObserveRequest) (ObserveResult, error) {
	var res ObserveResult
	err := c.c.Call("observe", req, &res)
	return res, err
}

// ModelInfo describes the remote serving model.
func (c *Client) ModelInfo() (ModelInfo, error) {
	var res ModelInfo
	err := c.c.Call("model_info", nil, &res)
	return res, err
}

// Stats snapshots the remote service.
func (c *Client) Stats() (Stats, error) {
	var res Stats
	err := c.c.Call("stats", nil, &res)
	return res, err
}

// observeRecord rebuilds the pipeline record an ObserveRequest
// describes, so the RPC path and the in-process path share one
// ObserveRecord implementation.
func observeRecord(req *ObserveRequest) *pipeline.Record {
	rec := &pipeline.Record{Observation: core.Observation{
		Terminal:  req.Terminal,
		LocalHour: req.LocalHour,
		ChosenIdx: req.ChosenIdx,
		Available: make([]core.SatObs, len(req.Sats)),
	}}
	for i, p := range req.Sats {
		rec.Available[i] = core.SatObs{
			AzimuthDeg:   p.AzimuthDeg,
			ElevationDeg: p.ElevationDeg,
			AgeYears:     p.AgeYears,
			Sunlit:       p.Sunlit,
		}
	}
	return rec
}

// RemoteScorer adapts a predictd endpoint to pipeline.OnlineScorer:
// campaigns stream revealed slots to a shared service over the wire
// instead of holding the model in-process (cmd/repro -predict-addr).
type RemoteScorer struct {
	c *Client
}

// NewRemoteScorer wraps a connected client.
func NewRemoteScorer(c *Client) *RemoteScorer { return &RemoteScorer{c: c} }

// ObserveRecord ships the record's observation to the remote service
// and maps the answer back onto a ScoreUpdate.
func (r *RemoteScorer) ObserveRecord(rec *pipeline.Record) (pipeline.ScoreUpdate, error) {
	req := ObserveRequest{
		Terminal:  rec.Terminal,
		LocalHour: rec.LocalHour,
		ChosenIdx: rec.ChosenIdx,
		Sats:      make([]SatParam, len(rec.Available)),
	}
	for i, a := range rec.Available {
		req.Sats[i] = SatParam{
			AzimuthDeg:   a.AzimuthDeg,
			ElevationDeg: a.ElevationDeg,
			AgeYears:     a.AgeYears,
			Sunlit:       a.Sunlit,
		}
	}
	res, err := r.c.Observe(req)
	if err != nil {
		return pipeline.ScoreUpdate{}, err
	}
	return pipeline.ScoreUpdate{
		Scored:       res.Scored,
		Rank:         res.Rank,
		RecentTop1:   res.RecentTop1,
		RecentTopK:   res.RecentTopK,
		RefTop1:      res.RefTop1,
		Drift:        res.Drift,
		DriftEvents:  res.DriftEvents,
		Refits:       res.Refits,
		ModelVersion: res.ModelVersion,
	}, nil
}
