package predict

import (
	"encoding/json"
	"testing"
)

// FuzzPredictRequest throws arbitrary bytes at the request codec and
// dispatch: whatever arrives in a frame, the handler must return a
// clean error or a marshalable result — never panic, never accept a
// request that violates the documented limits.
func FuzzPredictRequest(f *testing.F) {
	f.Add([]byte(`{"local_hour":12,"sats":[{"az":180,"el":45,"age_years":2,"sunlit":true}],"k":3}`))
	f.Add([]byte(`{"local_hour":-1,"sats":[]}`))
	f.Add([]byte(`{"local_hour":23,"sats":[{"el":90}],"chosen_idx":0}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"k":1e9}`))
	f.Add([]byte(`{"local_hour":5,"sats":[{"az":1}],"chosen_idx":-1}`))

	s, err := NewService(Config{Window: 16, MinFit: 8, RefitEvery: 1 << 30, Trees: 2, MaxDepth: 3, Synchronous: true})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, method := range []string{"predict", "topk", "observe", "model_info", "stats"} {
			res, err := s.Handle(method, json.RawMessage(data))
			if err != nil {
				continue
			}
			// Whatever the handler accepts must survive the framing
			// layer's marshal.
			if _, err := json.Marshal(res); err != nil {
				t.Fatalf("%s accepted a request but returned an unmarshalable result: %v", method, err)
			}
		}
	})
}
