package predict

import (
	"math/rand"
	"testing"

	"repro/internal/features"
)

// benchService returns a serving service plus a warm query set.
func benchService(tb testing.TB) (*Service, []features.Sat, *Scratch) {
	tb.Helper()
	s, err := NewService(Config{
		Window: 256, RefitEvery: 1 << 30, MinFit: 128,
		Trees: 30, MaxDepth: 10, Seed: 4, Synchronous: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	recs := regimeStream(rng, 160, 14, true)
	for i := range recs {
		if _, err := s.ObserveRecord(&recs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	if f, _ := s.Model(); f == nil {
		tb.Fatal("bench service has no model")
	}
	sats := make([]features.Sat, len(recs[0].Available))
	for i, a := range recs[0].Available {
		sats[i] = satFromObs(a)
	}
	sc := NewScratch()
	if _, err := s.Rank(recs[0].LocalHour, sats, sc); err != nil {
		tb.Fatal(err)
	}
	return s, sats, sc
}

// BenchmarkPredictServe measures the post-decode serve path —
// clustering, feature rendering, and full-forest ranking in caller
// scratch. The acceptance bar is 0 allocs/op.
func BenchmarkPredictServe(b *testing.B) {
	s, sats, sc := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Rank(12, sats, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPredictServeZeroAlloc pins the benchmark's alloc bar in the
// ordinary test run, so a regression fails CI without anyone reading
// benchmark output.
func TestPredictServeZeroAlloc(t *testing.T) {
	s, sats, sc := benchService(t)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Rank(12, sats, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serve path = %v allocs/op, want 0", allocs)
	}
}
