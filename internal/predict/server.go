package predict

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/dishrpc"
	"repro/internal/features"
)

// RPC surface: predictd speaks the dishrpc framed protocol so campaign
// workers and the coordinator query it with the transport they already
// carry. Methods: predict (best cluster), topk (full head of the
// ranking), observe (fold a revealed slot in — the remote form of
// ObserveRecord), model_info, stats. Unknown methods return the typed
// dishrpc.ErrUnknownMethod so clients can tell protocol skew from a
// broken transport.

// maxSats bounds a request's available set; real visible sets are a
// few dozen, so anything huge is a corrupt or adversarial frame.
const maxSats = 4096

// SatParam is one available satellite in a request.
type SatParam struct {
	AzimuthDeg   float64 `json:"az"`
	ElevationDeg float64 `json:"el"`
	AgeYears     float64 `json:"age_years"`
	Sunlit       bool    `json:"sunlit"`
}

// PredictRequest asks for a ranking of one slot's available set.
type PredictRequest struct {
	LocalHour int        `json:"local_hour"`
	Sats      []SatParam `json:"sats"`
	// K bounds the returned ranking for topk calls (default TopK).
	K int `json:"k,omitempty"`
}

func (p *PredictRequest) validate() error {
	if p.LocalHour < 0 || p.LocalHour > 23 {
		return fmt.Errorf("predict: local hour %d out of range 0..23", p.LocalHour)
	}
	if len(p.Sats) == 0 {
		return fmt.Errorf("predict: empty available set")
	}
	if len(p.Sats) > maxSats {
		return fmt.Errorf("predict: %d satellites exceeds limit %d", len(p.Sats), maxSats)
	}
	if p.K < 0 || p.K > features.NumClusters {
		return fmt.Errorf("predict: k %d out of range 0..%d", p.K, features.NumClusters)
	}
	return nil
}

// PredictResult is the answer to predict/topk: the top of the cluster
// ranking with per-cluster probabilities, plus which model answered.
type PredictResult struct {
	Clusters     []int     `json:"clusters"`
	Probs        []float64 `json:"probs"`
	ModelVersion int64     `json:"model_version"`
}

// ObserveRequest folds one revealed slot into the model remotely.
// ChosenIdx indexes Sats, mirroring core.Observation.
type ObserveRequest struct {
	Terminal  string     `json:"terminal,omitempty"`
	LocalHour int        `json:"local_hour"`
	Sats      []SatParam `json:"sats"`
	ChosenIdx int        `json:"chosen_idx"`
}

func (o *ObserveRequest) validate() error {
	if o.LocalHour < 0 || o.LocalHour > 23 {
		return fmt.Errorf("predict: local hour %d out of range 0..23", o.LocalHour)
	}
	if len(o.Sats) > maxSats {
		return fmt.Errorf("predict: %d satellites exceeds limit %d", len(o.Sats), maxSats)
	}
	if o.ChosenIdx < -1 || o.ChosenIdx >= len(o.Sats) {
		return fmt.Errorf("predict: chosen index %d out of range for %d satellites", o.ChosenIdx, len(o.Sats))
	}
	return nil
}

// ObserveResult mirrors pipeline.ScoreUpdate across the wire.
type ObserveResult struct {
	Scored       bool    `json:"scored"`
	Rank         int     `json:"rank"`
	RecentTop1   float64 `json:"recent_top1"`
	RecentTopK   float64 `json:"recent_topk"`
	RefTop1      float64 `json:"ref_top1"`
	Drift        bool    `json:"drift"`
	DriftEvents  int     `json:"drift_events"`
	Refits       int     `json:"refits"`
	ModelVersion int64   `json:"model_version"`
}

// ModelInfo describes the serving model.
type ModelInfo struct {
	ModelVersion int64 `json:"model_version"`
	NumTrees     int   `json:"num_trees"`
	NumClasses   int   `json:"num_classes"`
	NumFeatures  int   `json:"num_features"`
	Refits       int   `json:"refits"`
	WindowRows   int   `json:"window_rows"`
	TopK         int   `json:"top_k"`
}

func satsInto(dst []features.Sat, src []SatParam) []features.Sat {
	dst = dst[:0]
	for _, p := range src {
		dst = append(dst, features.Sat{
			AzimuthDeg:   p.AzimuthDeg,
			ElevationDeg: p.ElevationDeg,
			AgeYears:     p.AgeYears,
			Sunlit:       p.Sunlit,
		})
	}
	return dst
}

// Handle dispatches one RPC. It has the dishrpc.Handler signature;
// wire it up with NewServer or dishrpc.NewHandlerServer.
func (s *Service) Handle(method string, params json.RawMessage) (any, error) {
	s.m.requests.Add(1)
	switch method {
	case "predict":
		return s.handleRank(params, 1)
	case "topk":
		return s.handleRank(params, 0)
	case "observe":
		return s.handleObserve(params)
	case "model_info":
		return s.handleModelInfo(), nil
	case "stats":
		return s.Stats(), nil
	default:
		return nil, dishrpc.UnknownMethod(method)
	}
}

// handleRank serves predict (forceK=1) and topk (forceK=0 → request K
// or the configured TopK).
func (s *Service) handleRank(params json.RawMessage, forceK int) (any, error) {
	var req PredictRequest
	if err := json.Unmarshal(params, &req); err != nil {
		return nil, fmt.Errorf("predict: bad request: %w", err)
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	k := forceK
	if k == 0 {
		k = req.K
		if k == 0 {
			k = s.cfg.TopK
		}
	}

	start := time.Now()
	sc := s.pool.Get().(*Scratch)
	defer s.pool.Put(sc)
	sc.sats = satsInto(sc.sats, req.Sats)
	version, err := s.Rank(req.LocalHour, sc.sats, sc)
	if err != nil {
		return nil, err
	}
	s.m.serve.Observe(time.Since(start).Seconds())

	res := PredictResult{
		Clusters:     make([]int, k),
		Probs:        make([]float64, k),
		ModelVersion: version,
	}
	for i := 0; i < k; i++ {
		res.Clusters[i] = sc.idx[i]
		res.Probs[i] = sc.probs[sc.idx[i]]
	}
	return res, nil
}

func (s *Service) handleObserve(params json.RawMessage) (any, error) {
	var req ObserveRequest
	if err := json.Unmarshal(params, &req); err != nil {
		return nil, fmt.Errorf("predict: bad request: %w", err)
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	rec := observeRecord(&req)
	up, err := s.ObserveRecord(rec)
	if err != nil {
		return nil, err
	}
	return ObserveResult{
		Scored:       up.Scored,
		Rank:         up.Rank,
		RecentTop1:   up.RecentTop1,
		RecentTopK:   up.RecentTopK,
		RefTop1:      up.RefTop1,
		Drift:        up.Drift,
		DriftEvents:  up.DriftEvents,
		Refits:       up.Refits,
		ModelVersion: up.ModelVersion,
	}, nil
}

func (s *Service) handleModelInfo() ModelInfo {
	f, v := s.Model()
	st := s.Stats()
	info := ModelInfo{
		ModelVersion: v,
		Refits:       st.Refits,
		WindowRows:   st.WindowRows,
		TopK:         s.cfg.TopK,
	}
	if f != nil {
		info.NumTrees = f.NumTrees()
		info.NumClasses = f.NumClasses()
		info.NumFeatures = f.NumFeatures()
	}
	return info
}

// NewServer binds the service to addr with the dishrpc framed
// protocol. Run it with srv.Serve(ctx).
func NewServer(addr string, s *Service) (*dishrpc.Server, error) {
	return dishrpc.NewHandlerServer(addr, s.Handle)
}
