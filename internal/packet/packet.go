// Package packet serializes and decodes the Ethernet/IPv4/UDP framing
// used to export simulated probe traffic as packet captures. It is a
// deliberately small, allocation-conscious take on the layered
// decode/serialize model (cf. gopacket): headers are plain structs
// with SerializeTo/Parse pairs, checksums are computed on
// serialization and verified on parse.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options
	UDPHeaderLen      = 8
)

// EtherTypeIPv4 is the Ethernet payload type for IPv4.
const EtherTypeIPv4 = 0x0800

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// ErrTruncated reports a buffer shorter than the layer's header.
var ErrTruncated = errors.New("packet: truncated")

// ErrChecksum reports a failed checksum verification.
var ErrChecksum = errors.New("packet: bad checksum")

// MAC is an Ethernet hardware address.
type MAC [6]byte

// IP4 is an IPv4 address.
type IP4 [4]byte

// String formats the address dotted-quad.
func (a IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Ethernet is the layer-2 header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// SerializeTo writes the header into b and returns the bytes used.
func (e *Ethernet) SerializeTo(b []byte) (int, error) {
	if len(b) < EthernetHeaderLen {
		return 0, fmt.Errorf("%w: ethernet needs %d bytes, have %d", ErrTruncated, EthernetHeaderLen, len(b))
	}
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return EthernetHeaderLen, nil
}

// Parse reads the header from b and returns the remaining payload.
func (e *Ethernet) Parse(b []byte) ([]byte, error) {
	if len(b) < EthernetHeaderLen {
		return nil, fmt.Errorf("%w: ethernet frame of %d bytes", ErrTruncated, len(b))
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[EthernetHeaderLen:], nil
}

// IPv4 is the layer-3 header (no options supported).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst IP4
	// Length is the total length including header; set by SerializeTo
	// from the payload length, verified by Parse.
	Length uint16
}

// SerializeTo writes the header for a payload of payloadLen bytes.
func (ip *IPv4) SerializeTo(b []byte, payloadLen int) (int, error) {
	if len(b) < IPv4HeaderLen {
		return 0, fmt.Errorf("%w: ipv4 needs %d bytes, have %d", ErrTruncated, IPv4HeaderLen, len(b))
	}
	total := IPv4HeaderLen + payloadLen
	if total > 0xFFFF {
		return 0, fmt.Errorf("packet: ipv4 payload of %d bytes overflows total length", payloadLen)
	}
	ip.Length = uint16(total)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.Length)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], 0x4000) // DF, no fragmentation
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0 // checksum slot
	copy(b[12:16], ip.Src[:])
	copy(b[16:20], ip.Dst[:])
	sum := Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], sum)
	return IPv4HeaderLen, nil
}

// Parse reads and verifies the header, returning the payload.
func (ip *IPv4) Parse(b []byte) ([]byte, error) {
	if len(b) < IPv4HeaderLen {
		return nil, fmt.Errorf("%w: ipv4 packet of %d bytes", ErrTruncated, len(b))
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("packet: ip version %d, want 4", b[0]>>4)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("%w: ipv4 header length %d", ErrTruncated, ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, fmt.Errorf("%w: ipv4 header", ErrChecksum)
	}
	ip.TOS = b[1]
	ip.Length = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ip.TTL = b[8]
	ip.Protocol = b[9]
	copy(ip.Src[:], b[12:16])
	copy(ip.Dst[:], b[16:20])
	if int(ip.Length) < ihl || int(ip.Length) > len(b) {
		return nil, fmt.Errorf("%w: ipv4 total length %d of %d-byte buffer", ErrTruncated, ip.Length, len(b))
	}
	return b[ihl:ip.Length], nil
}

// UDP is the layer-4 header.
type UDP struct {
	SrcPort, DstPort uint16
	// Length includes the UDP header; set on serialize.
	Length uint16
}

// SerializeTo writes the header and computes the checksum over the
// IPv4 pseudo-header plus payload (payload must already sit at
// b[UDPHeaderLen:UDPHeaderLen+payloadLen]).
func (u *UDP) SerializeTo(b []byte, src, dst IP4, payloadLen int) (int, error) {
	if len(b) < UDPHeaderLen+payloadLen {
		return 0, fmt.Errorf("%w: udp needs %d bytes, have %d", ErrTruncated, UDPHeaderLen+payloadLen, len(b))
	}
	total := UDPHeaderLen + payloadLen
	if total > 0xFFFF {
		return 0, fmt.Errorf("packet: udp length %d overflows", total)
	}
	u.Length = uint16(total)
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	b[6], b[7] = 0, 0
	sum := udpChecksum(b[:total], src, dst)
	if sum == 0 {
		sum = 0xFFFF // per RFC 768, transmitted all-ones when computed zero
	}
	binary.BigEndian.PutUint16(b[6:8], sum)
	return total, nil
}

// Parse reads and verifies the header, returning the payload. src/dst
// from the IP layer feed the pseudo-header checksum.
func (u *UDP) Parse(b []byte, src, dst IP4) ([]byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, fmt.Errorf("%w: udp datagram of %d bytes", ErrTruncated, len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(b) {
		return nil, fmt.Errorf("%w: udp length %d of %d-byte buffer", ErrTruncated, u.Length, len(b))
	}
	if binary.BigEndian.Uint16(b[6:8]) != 0 { // checksum 0 = disabled
		if udpChecksum(b[:u.Length], src, dst) != 0 {
			return nil, fmt.Errorf("%w: udp", ErrChecksum)
		}
	}
	return b[UDPHeaderLen:u.Length], nil
}

// Checksum is the RFC 1071 Internet checksum.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// udpChecksum computes the checksum including the IPv4 pseudo-header.
// Returns 0 for a datagram whose stored checksum is valid.
func udpChecksum(datagram []byte, src, dst IP4) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = ProtoUDP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(datagram)))

	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add(pseudo[:])
	add(datagram)
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// BuildUDPFrame assembles a full Ethernet/IPv4/UDP frame around a
// payload in one call. Returned slice is freshly allocated.
func BuildUDPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, ipID uint16, payload []byte) ([]byte, error) {
	frame := make([]byte, EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen+len(payload))
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	if _, err := eth.SerializeTo(frame); err != nil {
		return nil, err
	}
	ipStart := EthernetHeaderLen
	udpStart := ipStart + IPv4HeaderLen
	copy(frame[udpStart+UDPHeaderLen:], payload)
	udp := UDP{SrcPort: srcPort, DstPort: dstPort}
	if _, err := udp.SerializeTo(frame[udpStart:], srcIP, dstIP, len(payload)); err != nil {
		return nil, err
	}
	ip := IPv4{ID: ipID, TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}
	if _, err := ip.SerializeTo(frame[ipStart:], UDPHeaderLen+len(payload)); err != nil {
		return nil, err
	}
	return frame, nil
}

// ParseUDPFrame decodes an Ethernet/IPv4/UDP frame, verifying both
// checksums, and returns the decoded headers plus payload.
func ParseUDPFrame(frame []byte) (Ethernet, IPv4, UDP, []byte, error) {
	var eth Ethernet
	var ip IPv4
	var udp UDP
	rest, err := eth.Parse(frame)
	if err != nil {
		return eth, ip, udp, nil, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return eth, ip, udp, nil, fmt.Errorf("packet: ethertype %#x, want ipv4", eth.EtherType)
	}
	rest, err = ip.Parse(rest)
	if err != nil {
		return eth, ip, udp, nil, err
	}
	if ip.Protocol != ProtoUDP {
		return eth, ip, udp, nil, fmt.Errorf("packet: ip protocol %d, want udp", ip.Protocol)
	}
	payload, err := udp.Parse(rest, ip.Src, ip.Dst)
	if err != nil {
		return eth, ip, udp, nil, err
	}
	return eth, ip, udp, payload, nil
}
