package packet

import "testing"

// FuzzParseUDPFrame checks the layered decoder never panics and never
// returns a payload that escapes the input buffer.
func FuzzParseUDPFrame(f *testing.F) {
	good, _ := BuildUDPFrame(
		MAC{1, 2, 3, 4, 5, 6}, MAC{6, 5, 4, 3, 2, 1},
		IP4{10, 0, 0, 1}, IP4{10, 0, 0, 2}, 1234, 5678, 42,
		[]byte("fuzz seed payload"))
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen))
	f.Fuzz(func(t *testing.T, frame []byte) {
		_, _, _, payload, err := ParseUDPFrame(frame)
		if err != nil {
			return
		}
		if len(payload) > len(frame) {
			t.Fatalf("payload of %d bytes from a %d-byte frame", len(payload), len(frame))
		}
	})
}
