package packet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	srcMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	dstMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	srcIP  = IP4{192, 168, 1, 10}
	dstIP  = IP4{10, 0, 0, 1}
)

func TestBuildParseRoundTrip(t *testing.T) {
	payload := []byte("starlink probe payload")
	frame, err := BuildUDPFrame(srcMAC, dstMAC, srcIP, dstIP, 40000, 9300, 7, payload)
	if err != nil {
		t.Fatal(err)
	}
	eth, ip, udp, got, err := ParseUDPFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Src != srcMAC || eth.Dst != dstMAC {
		t.Error("mac mismatch")
	}
	if ip.Src != srcIP || ip.Dst != dstIP || ip.TTL != 64 || ip.ID != 7 {
		t.Errorf("ip header %+v", ip)
	}
	if udp.SrcPort != 40000 || udp.DstPort != 9300 {
		t.Errorf("udp ports %d %d", udp.SrcPort, udp.DstPort)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload mismatch")
	}
}

func TestBuildParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, rng.Intn(1200))
		rng.Read(payload)
		var s, d IP4
		rng.Read(s[:])
		rng.Read(d[:])
		sp := uint16(rng.Intn(65536))
		dp := uint16(rng.Intn(65536))
		frame, err := BuildUDPFrame(srcMAC, dstMAC, s, d, sp, dp, uint16(rng.Intn(65536)), payload)
		if err != nil {
			return false
		}
		_, ip, udp, got, err := ParseUDPFrame(frame)
		if err != nil {
			return false
		}
		return ip.Src == s && ip.Dst == d && udp.SrcPort == sp && udp.DstPort == dp && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	frame, err := BuildUDPFrame(srcMAC, dstMAC, srcIP, dstIP, 1, 2, 3, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the TTL inside the IP header.
	frame[EthernetHeaderLen+8] ^= 0xFF
	if _, _, _, _, err := ParseUDPFrame(frame); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupted ip header parsed: %v", err)
	}
}

func TestUDPChecksumDetectsPayloadCorruption(t *testing.T) {
	frame, err := BuildUDPFrame(srcMAC, dstMAC, srcIP, dstIP, 1, 2, 3, []byte("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0x01
	if _, _, _, _, err := ParseUDPFrame(frame); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupted payload parsed: %v", err)
	}
}

func TestUDPChecksumZeroMeansDisabled(t *testing.T) {
	frame, err := BuildUDPFrame(srcMAC, dstMAC, srcIP, dstIP, 1, 2, 3, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	// Zero the UDP checksum: the parser must accept (checksum disabled).
	udpStart := EthernetHeaderLen + IPv4HeaderLen
	frame[udpStart+6], frame[udpStart+7] = 0, 0
	if _, _, _, _, err := ParseUDPFrame(frame); err != nil {
		t.Errorf("zero-checksum datagram rejected: %v", err)
	}
}

func TestTruncatedFrames(t *testing.T) {
	frame, err := BuildUDPFrame(srcMAC, dstMAC, srcIP, dstIP, 1, 2, 3, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 5, EthernetHeaderLen - 1, EthernetHeaderLen + 3, EthernetHeaderLen + IPv4HeaderLen - 1} {
		if _, _, _, _, err := ParseUDPFrame(frame[:n]); err == nil {
			t.Errorf("truncated frame of %d bytes parsed", n)
		}
	}
}

func TestParseRejectsNonIPv4(t *testing.T) {
	frame, _ := BuildUDPFrame(srcMAC, dstMAC, srcIP, dstIP, 1, 2, 3, []byte("x"))
	binary.BigEndian.PutUint16(frame[12:14], 0x86DD) // IPv6 ethertype
	if _, _, _, _, err := ParseUDPFrame(frame); err == nil {
		t.Error("ipv6 ethertype parsed as ipv4")
	}
	frame2, _ := BuildUDPFrame(srcMAC, dstMAC, srcIP, dstIP, 1, 2, 3, []byte("x"))
	// Flip protocol to TCP and fix the header checksum so only the
	// protocol check can reject it.
	ipStart := EthernetHeaderLen
	frame2[ipStart+9] = 6
	frame2[ipStart+10], frame2[ipStart+11] = 0, 0
	sum := Checksum(frame2[ipStart : ipStart+IPv4HeaderLen])
	binary.BigEndian.PutUint16(frame2[ipStart+10:ipStart+12], sum)
	if _, _, _, _, err := ParseUDPFrame(frame2); err == nil {
		t.Error("tcp protocol parsed as udp")
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Classic example: checksum of this sequence is 0xddf2 complemented.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	got := Checksum(b)
	if got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	// Verification property: appending the checksum makes the sum zero.
	full := append(append([]byte(nil), b...), byte(got>>8), byte(got))
	if Checksum(full) != 0 {
		t.Error("checksum self-verification failed")
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0xAB}
	if got := Checksum(b); got != ^uint16(0xAB00) {
		t.Errorf("odd checksum = %#x", got)
	}
}

func TestIP4String(t *testing.T) {
	if got := (IP4{10, 0, 0, 1}).String(); got != "10.0.0.1" {
		t.Errorf("String = %q", got)
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	if _, err := BuildUDPFrame(srcMAC, dstMAC, srcIP, dstIP, 1, 2, 3, make([]byte, 70000)); err == nil {
		t.Error("70k payload accepted")
	}
}
