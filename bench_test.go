// Package repro's root benchmark harness: one benchmark per paper
// table/figure plus the ablations DESIGN.md calls out. Each benchmark
// times the experiment's analysis path and reports its headline metric
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// whole evaluation in one run (see EXPERIMENTS.md for the recorded
// numbers).
package repro

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/astro"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/dtw"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/ml"
	"repro/internal/obstruction"
	"repro/internal/pipeline"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
)

// benchEnv lazily builds one shared environment + observation set so
// individual benchmarks measure analysis, not setup.
var (
	benchOnce sync.Once
	benchErr  error
	bEnv      *experiments.Env
	bObs      []core.Observation
	bData     *ml.Dataset
)

func benchSetup(b *testing.B) (*experiments.Env, []core.Observation, *ml.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		bEnv, benchErr = experiments.NewEnv(experiments.Config{Scale: experiments.Medium, Seed: 7})
		if benchErr != nil {
			return
		}
		bObs, benchErr = bEnv.Observations(400)
		if benchErr != nil {
			return
		}
		bData, benchErr = core.BuildDataset(bObs)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return bEnv, bObs, bData
}

// BenchmarkFig2RTTTrace regenerates the Figure 2 artifact: a 2-minute
// RTT trace at 1 probe / 20 ms with 15-second regime changes.
func BenchmarkFig2RTTTrace(b *testing.B) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	var res *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = env.Fig2("Madrid", 2*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.WindowMedians)), "slots")
}

// BenchmarkStatWindows regenerates the §3 Mann-Whitney analysis and
// reports the fraction of consecutive windows that differ at p < .05
// (paper: all of them).
func BenchmarkStatWindows(b *testing.B) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := env.WindowStats(3 * time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		frac = 0
		for _, r := range res {
			frac += r.SignificantFrac
		}
		frac /= float64(len(res))
	}
	b.ReportMetric(frac*100, "sig%")
}

// BenchmarkObstructionXOR regenerates the Figure 3 step: XOR two full
// obstruction-map snapshots and recover the isolated track.
func BenchmarkObstructionXOR(b *testing.B) {
	env, _, _ := benchSetup(b)
	fig3, err := env.Fig3("Iowa")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var track int
	for i := 0; i < b.N; i++ {
		diff := obstruction.XOR(fig3.Prev, fig3.Cur)
		track = len(diff.Track())
	}
	b.ReportMetric(float64(track), "track_px")
}

// BenchmarkIdentification regenerates the §4 validation: the full
// paint → XOR → DTW pipeline across a slot of campaign, reporting
// accuracy against ground truth (paper pilot: >99%).
func BenchmarkIdentification(b *testing.B) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := env.IdentValidation(12, false)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(acc*100, "acc%")
}

// benchIdentifySlot times one slot of the §4 identification — XOR,
// track recovery, candidate sampling, DTW matching — exactly as the
// campaign engine invokes it: constellation snapshot precomputed and
// a per-worker matcher reused across iterations.
func benchIdentifySlot(b *testing.B, brute bool) {
	env, _, _ := benchSetup(b)
	fig3, err := env.Fig3("Iowa")
	if err != nil {
		b.Fatal(err)
	}
	var vp = env.Terminals[0].VantagePoint
	for _, t := range env.Terminals {
		if t.Name == "Iowa" {
			vp = t.VantagePoint
		}
	}
	slotStart := env.Start().Add(scheduler.Period)
	snap := env.Cons.Snapshot(slotStart)
	matcher := &dtw.Matcher{}
	orig := env.Ident.DisablePruning
	env.Ident.DisablePruning = brute
	defer func() { env.Ident.DisablePruning = orig }()
	b.ReportAllocs()
	b.ResetTimer()
	var ident core.Identification
	for i := 0; i < b.N; i++ {
		ident, err = env.Ident.IdentifyFromMapsMatcher(fig3.Prev, fig3.Cur, vp, slotStart, snap, matcher)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ident.SatID), "sat_id")
	b.ReportMetric(ident.Margin, "margin")
}

// BenchmarkIdentifySlot is the pruned-matcher identification path the
// campaign uses.
func BenchmarkIdentifySlot(b *testing.B) { benchIdentifySlot(b, false) }

// BenchmarkIdentifySlotBrute is the same slot through brute-force
// dtw.Identify; compare ns/op against BenchmarkIdentifySlot for the
// pruning speedup (the two are bit-identical).
func BenchmarkIdentifySlotBrute(b *testing.B) { benchIdentifySlot(b, true) }

// benchCampaign times the full non-oracle campaign loop (paint → XOR
// → DTW per terminal per slot) at a given worker-pool size.
func benchCampaign(b *testing.B, workers int) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunCampaign(context.Background(), core.CampaignConfig{
			Scheduler:  env.Sched,
			Identifier: env.Ident,
			Start:      env.Start(),
			Slots:      12,
			Workers:    workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy()
	}
	b.ReportMetric(acc*100, "acc%")
}

// BenchmarkCampaignSerial is the single-worker baseline for the
// campaign engine.
func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignParallel runs the same campaign on the worker pool
// (4 workers = one per study terminal). Output is byte-identical to
// the serial engine; compare ns/op against BenchmarkCampaignSerial
// for the speedup.
func BenchmarkCampaignParallel(b *testing.B) { benchCampaign(b, 4) }

// BenchmarkCampaignParallelTelemetry is BenchmarkCampaignParallel with
// the full telemetry bundle live — registry-backed counters, gauges,
// matcher stats, and a 4096-deep decision trace. The overhead
// acceptance number: ns/op must stay within 3% of
// BenchmarkCampaignParallel (the nil-bundle Nop path). Record both
// with scripts/bench.sh (BENCH_PR5.json).
func BenchmarkCampaignParallelTelemetry(b *testing.B) {
	env, _, _ := benchSetup(b)
	reg := telemetry.NewRegistry()
	m := core.NewCampaignMetrics(reg)
	m.Trace = telemetry.NewDecisionTrace(4096)
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunCampaign(context.Background(), core.CampaignConfig{
			Scheduler:  env.Sched,
			Identifier: env.Ident,
			Start:      env.Start(),
			Slots:      12,
			Workers:    4,
			Metrics:    m,
		})
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy()
	}
	b.ReportMetric(acc*100, "acc%")
}

// BenchmarkFig4AOECDF regenerates Figure 4 and reports the median AOE
// lift of chosen over available satellites (paper: 22.9 deg).
func BenchmarkFig4AOECDF(b *testing.B) {
	env, obs, _ := benchSetup(b)
	b.ReportAllocs()
	var lift float64
	for i := 0; i < b.N; i++ {
		a, err := env.Fig4(obs)
		if err != nil {
			b.Fatal(err)
		}
		lift = a.MedianLiftDeg
	}
	b.ReportMetric(lift, "lift_deg")
}

// BenchmarkFig5AzimuthCDF regenerates Figure 5 and reports the mean
// north-pick fraction over unobstructed sites (paper: 82%).
func BenchmarkFig5AzimuthCDF(b *testing.B) {
	env, obs, _ := benchSetup(b)
	b.ReportAllocs()
	var north float64
	for i := 0; i < b.N; i++ {
		a, err := env.Fig5(obs)
		if err != nil {
			b.Fatal(err)
		}
		north = 0
		n := 0
		for name, f := range a.NorthChosenFrac {
			if name == "New York" {
				continue
			}
			north += f
			n++
		}
		north /= float64(n)
	}
	b.ReportMetric(north*100, "north%")
}

// BenchmarkFig6LaunchCorr regenerates Figure 6 and reports the mean
// Pearson correlation between launch date and pick probability
// (paper: 0.41).
func BenchmarkFig6LaunchCorr(b *testing.B) {
	env, obs, _ := benchSetup(b)
	b.ReportAllocs()
	var r float64
	for i := 0; i < b.N; i++ {
		a, err := env.Fig6(obs)
		if err != nil {
			b.Fatal(err)
		}
		r = a.MeanPearson
	}
	b.ReportMetric(r, "pearson")
}

// BenchmarkFig7SunlitAOE regenerates Figure 7 / §5.3 and reports the
// sunlit pick rate in mixed slots (paper: 72.3%).
func BenchmarkFig7SunlitAOE(b *testing.B) {
	env, obs, _ := benchSetup(b)
	b.ReportAllocs()
	var rate float64
	for i := 0; i < b.N; i++ {
		a, err := env.Fig7(obs)
		if err != nil {
			b.Fatal(err)
		}
		rate = a.SunlitPickRate
	}
	b.ReportMetric(rate*100, "sunlit%")
}

// benchFig8 regenerates Figure 8 — train the random forest with the
// paper's protocol, report holdout top-5 accuracy (paper: 65% vs 22%
// baseline) — with the model-training pool pinned to a given size.
func benchFig8(b *testing.B, workers int) {
	env, _, data := benchSetup(b)
	b.ReportAllocs()
	var model5, base5 float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.QuickModelConfig(env.Seed + 1)
		cfg.Workers = workers
		res, err := core.TrainModel(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		model5 = res.ModelTopK[4]
		base5 = res.BaselineTopK[4]
	}
	b.ReportMetric(model5*100, "model_top5%")
	b.ReportMetric(base5*100, "base_top5%")
}

// BenchmarkFig8TopK trains on the full worker pool (Workers 0 =
// GOMAXPROCS); the forest is bit-identical to the serial run's.
func BenchmarkFig8TopK(b *testing.B) { benchFig8(b, 0) }

// BenchmarkFig8TopKSerial is the one-worker baseline; compare ns/op
// against BenchmarkFig8TopK for the training parallelism gain.
func BenchmarkFig8TopKSerial(b *testing.B) { benchFig8(b, 1) }

// BenchmarkAblationMatcher swaps DTW for the nearest-endpoint matcher
// and reports its identification accuracy for comparison with
// BenchmarkIdentification.
func BenchmarkAblationMatcher(b *testing.B) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := env.IdentValidation(12, true)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(acc*100, "acc%")
}

// BenchmarkAblationPropagator runs the identification pipeline on a
// constellation propagated with the two-body+J2 baseline instead of
// SGP4.
func BenchmarkAblationPropagator(b *testing.B) {
	env, err := experiments.NewEnv(experiments.Config{Scale: experiments.Small, Seed: 7, UseKeplerJ2: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := env.IdentValidation(12, false)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(acc*100, "acc%")
}

// BenchmarkAblationModel compares a single CART tree against the
// forest on the Figure 8 task.
func BenchmarkAblationModel(b *testing.B) {
	_, _, data := benchSetup(b)
	b.ReportAllocs()
	var top5 float64
	for i := 0; i < b.N; i++ {
		res, err := core.TrainModel(data, core.ModelConfig{
			Folds: 3,
			Grid:  []ml.ForestConfig{{NumTrees: 1, Tree: ml.TreeConfig{MaxDepth: 10, MaxFeatures: 1 << 30}}},
			Seed:  7,
		})
		if err != nil {
			b.Fatal(err)
		}
		top5 = res.ModelTopK[4]
	}
	b.ReportMetric(top5*100, "tree_top5%")
}

// sampleLiveHeap folds the current live heap above base into peak. A
// forced GC first makes HeapAlloc the live set rather than live plus
// uncollected garbage; it is expensive, so callers sample sparsely.
func sampleLiveHeap(base uint64, peak *uint64) {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > base && m.HeapAlloc-base > *peak {
		*peak = m.HeapAlloc - base
	}
}

// BenchmarkCampaignMemory is the O(1)-memory claim for the streaming
// pipeline, measured. An oracle campaign runs source → stage → sink
// at 60 slots and at 10× that, in two sink configurations: "stream"
// encodes observations record-at-a-time to a discarded JSONL stream
// and keeps only skip counters, "batch" materializes every record and
// observation the way CampaignResult does. Both sample the live heap
// (forced GC) at the same fixed cadence as records flow and once
// after the run with results still reachable. final_live_MB is the
// headline: flat across the 10× jump for stream — it holds a reorder
// window, not the campaign — and linear in slots for batch. Record
// with scripts/bench.sh (BENCH_PR4.json).
func BenchmarkCampaignMemory(b *testing.B) {
	for _, tc := range []struct {
		mode  string
		slots int
	}{
		{"stream", 60},
		{"stream", 600},
		{"batch", 60},
		{"batch", 600},
	} {
		b.Run(fmt.Sprintf("%s/slots=%d", tc.mode, tc.slots), func(b *testing.B) {
			env, _, _ := benchSetup(b)
			cfg := core.CampaignConfig{
				Scheduler:  env.Sched,
				Identifier: env.Ident,
				Start:      env.Start(),
				Slots:      tc.slots,
				Oracle:     true,
				Workers:    4,
			}
			b.ReportAllocs()
			var peak, final uint64
			var served int
			for i := 0; i < b.N; i++ {
				runtime.GC()
				var base runtime.MemStats
				runtime.ReadMemStats(&base)
				peak, final = 0, 0

				// A fixed 8 samples per run, whatever the slot count:
				// the in-flight window fluctuates, and sampling a longer
				// run more often would bias its observed max upward.
				every := tc.slots * len(env.Terminals) / 8
				if every == 0 {
					every = 1
				}
				n := 0
				sample := pipeline.SinkFunc(func(rec *pipeline.Record) error {
					if n++; n%every == 0 {
						sampleLiveHeap(base.HeapAlloc, &peak)
					}
					return nil
				})

				src := &pipeline.Campaign{Config: cfg}
				counts := &pipeline.CountSkips{}
				collect := &pipeline.Collect{}
				obs := &pipeline.CollectObservations{}
				sinks := []pipeline.Sink{sample}
				if tc.mode == "batch" {
					sinks = append(sinks, collect, pipeline.Where(pipeline.ChosenOnly(), obs))
				} else {
					sinks = append(sinks, counts, pipeline.Where(pipeline.ChosenOnly(), pipeline.WriteObservations(io.Discard)))
				}
				p := &pipeline.Pipeline{Source: src, Sinks: sinks}
				if err := p.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
				sampleLiveHeap(base.HeapAlloc, &final)
				if final > peak {
					peak = final
				}
				runtime.KeepAlive(collect)
				runtime.KeepAlive(obs)
				if tc.mode == "batch" {
					served = len(obs.Obs)
				} else {
					served = counts.Served
				}
			}
			b.ReportMetric(float64(peak)/(1<<20), "peak_live_MB")
			b.ReportMetric(float64(final)/(1<<20), "final_live_MB")
			b.ReportMetric(float64(served), "served")
		})
	}
}

// benchFleetTerminals spreads n synthetic terminals over the inhabited
// latitudes on a golden-angle spiral, mirroring the fleet fixture in
// internal/core's tests.
func benchFleetTerminals(n int) []scheduler.Terminal {
	const goldenDeg = 137.50776405003785
	terms := make([]scheduler.Terminal, 0, n)
	for i := 0; i < n; i++ {
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		lon := mod360(float64(i)*goldenDeg) - 180
		terms = append(terms, scheduler.Terminal{VantagePoint: geo.VantagePoint{
			Name:           fmt.Sprintf("fleet-%06d", i),
			Location:       astro.Geodetic{LatDeg: -60 + 120*frac, LonDeg: lon},
			UTCOffsetHours: int(lon / 15),
		}, Priority: 1})
	}
	return terms
}

func mod360(v float64) float64 {
	v = v - 360*float64(int(v/360))
	if v < 0 {
		v += 360
	}
	return v
}

// benchFleetCampaign runs a short oracle campaign over n terminals and
// reports records/s and slots/s. Snapshots come from a shared cache
// (warm after the first iteration), so the timed cost is the per-slot
// visibility work itself: the scheduler's candidate queries plus every
// terminal's available set.
func benchFleetCampaign(b *testing.B, n int, disableIndex bool, snapWorkers int) {
	env, _, _ := benchSetup(b)
	cache := constellation.NewSnapshotCache(0, nil)
	cache.SetSnapshotWorkers(snapWorkers)
	sched, err := scheduler.NewGlobal(scheduler.Config{
		Constellation: env.Cons,
		Terminals:     benchFleetTerminals(n),
		Seed:          7,
		DisableIndex:  disableIndex,
		Snapshots:     cache,
	})
	if err != nil {
		b.Fatal(err)
	}
	const slots = 2
	cfg := core.CampaignConfig{
		Scheduler:    sched,
		Identifier:   env.Ident,
		Start:        env.Start(),
		Slots:        slots,
		Oracle:       true,
		Workers:      1,
		DisableIndex: disableIndex,
		Snapshots:    cache,
	}
	b.ReportAllocs()
	b.ResetTimer()
	records := 0
	for i := 0; i < b.N; i++ {
		records = 0
		if _, err := core.RunCampaignStream(context.Background(), cfg, func(core.SlotRecord) error {
			records++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(records*b.N)/elapsed, "records/s")
		b.ReportMetric(float64(slots*b.N)/elapsed, "slots/s")
	}
}

// BenchmarkCampaignFleet is the fleet-scaling acceptance benchmark
// (ROADMAP item 1): oracle campaigns from 4 terminals to 100k, indexed
// vs. the linear scan. The headline is records/s staying roughly flat
// for the indexed engine as the fleet grows — per-slot cost
// near-O(visible) per terminal — against the linear scan's O(sats) per
// terminal. Linear stops at 10k (100k × 4k satellite observations per
// slot is pointlessly slow); outputs are byte-identical either way
// (TestCampaignFleetIdentical). Record with scripts/bench.sh
// (BENCH_PR6.json; rerecorded with the zero-alloc snapshot engine as
// BENCH_PR8.json). The parsnap group is the PR8 ablation: the same
// indexed campaign with snapshot propagation fanned out across
// GOMAXPROCS workers — byte-identical output, only the snapshot fill
// cost moves. On a single-core host it matches indexed/ to within
// noise; the fan-out needs real cores to show its speedup.
func BenchmarkCampaignFleet(b *testing.B) {
	for _, n := range []int{4, 100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("indexed/terminals=%d", n), func(b *testing.B) {
			benchFleetCampaign(b, n, false, 1)
		})
	}
	for _, n := range []int{4, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("linear/terminals=%d", n), func(b *testing.B) {
			benchFleetCampaign(b, n, true, 1)
		})
	}
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("parsnap/terminals=%d", n), func(b *testing.B) {
			benchFleetCampaign(b, n, false, -1)
		})
	}
}

// BenchmarkSchedulerAllocate measures one global allocation round
// (4 terminals) including the constellation snapshot.
func BenchmarkSchedulerAllocate(b *testing.B) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	start := env.Start()
	for i := 0; i < b.N; i++ {
		env.Sched.Allocate(start.Add(time.Duration(i) * 15 * time.Second))
	}
}

// BenchmarkExtHemisphere regenerates the §8 hemisphere-generalization
// experiment, reporting Sydney's (negative) north skew.
func BenchmarkExtHemisphere(b *testing.B) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	var sydney float64
	for i := 0; i < b.N; i++ {
		res, err := env.HemisphereComparison(60)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Southern {
			if s.Terminal == "Sydney" {
				sydney = s.NorthSkew()
			}
		}
	}
	b.ReportMetric(sydney, "sydney_skew")
}

// BenchmarkExtGSOAblation measures how much of the north preference
// the exclusion zone explains.
func BenchmarkExtGSOAblation(b *testing.B) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	var with, without float64
	for i := 0; i < b.N; i++ {
		res, err := env.GSOAblation(60)
		if err != nil {
			b.Fatal(err)
		}
		with, without = res.NorthFracWithGSO, res.NorthFracWithoutGSO
	}
	b.ReportMetric(with*100, "north_gso%")
	b.ReportMetric(without*100, "north_nogso%")
}

// BenchmarkExtLoadHypothesis runs the §8 load-bound test: model
// accuracy against the default vs fully deterministic scheduler.
func BenchmarkExtLoadHypothesis(b *testing.B) {
	env, _, _ := benchSetup(b)
	b.ReportAllocs()
	var def, det float64
	for i := 0; i < b.N; i++ {
		res, err := env.LoadSensitivity(200)
		if err != nil {
			b.Fatal(err)
		}
		def, det = res.WithHiddenLoad, res.Deterministic
	}
	b.ReportMetric(def*100, "default_top5%")
	b.ReportMetric(det*100, "determ_top5%")
}
